"""Bit-packed read blocks and the popcount correction kernels.

A :class:`~repro.io.records.ReadBlock` stores one byte per base, which is
convenient for slicing but wasteful for the correction hot path: every
tile extraction re-gathers ``w`` one-byte columns and re-packs them into
an id.  This module packs a block once — 4 bases per byte, 32 bases per
``uint64`` word, leftmost base in the most significant bits — after which
window extraction, Hamming distance and base substitution are all whole-
word shift/mask/XOR/popcount operations (the ``CodeWordStorage`` idiom of
the original bit-twiddled Reptile, lifted to numpy arrays).

Word layout
-----------
Base ``c`` of a read lands in word ``c // 32`` at bit offset
``62 - 2 * (c % 32)`` (MSB-first), so a whole word *is* the window id of
the 32-base window aligned at that word boundary.  A window of ``w <= 32``
bases starting at ``s`` therefore spans at most two words and is extracted
branch-free as::

    combined = (words[q] << 2r) | (words[q+1] >> (64 - 2r))   # q=s//32, r=s%32
    id       = combined >> (64 - 2w)

One sentinel zero word is appended per read so ``q + 1`` never indexes out
of bounds; its bits are always shifted out for in-range windows.

Ambiguous bases cannot live in 2 bits, so validity travels separately as
a per-read *bad-prefix* array: ``bad_prefix[i, c]`` counts the ambiguous
(or past-length) bases of read ``i`` strictly before position ``c``, and
such bases pack as ``0b00`` in the code words.  A window ``[s, s + w)``
is valid exactly when ``bad_prefix[i, s + w] == bad_prefix[i, s]`` — two
gathers and a compare, no second bit plane to pack or extract.  The
prefix never changes under substitution, because corrections only ever
rewrite windows that are valid to begin with.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError
from repro.kmer.codec import INVALID_CODE, MAX_K

#: Bases stored per 64-bit word.
BASES_PER_WORD = 32

_U64 = np.uint64
_LITTLE_ENDIAN = sys.byteorder == "little"

# SWAR popcount constants (the 0x5555…/0x3333… reduction).
_M1 = _U64(0x5555555555555555)
_M2 = _U64(0x3333333333333333)
_M4 = _U64(0x0F0F0F0F0F0F0F0F)
_H01 = _U64(0x0101010101010101)

#: Bit shift of each base lane within a word (MSB-first).
_LANE_SHIFTS: NDArray[np.uint64] = (
    62 - 2 * np.arange(BASES_PER_WORD, dtype=np.int64)
).astype(np.uint64)


def _check_window(w: int) -> None:
    if not 1 <= w <= MAX_K:
        raise CodecError(f"window length must be in [1, {MAX_K}], got {w}")


def popcount64(x: NDArray[np.uint64]) -> NDArray[np.uint64]:
    """Per-element population count of a uint64 array (SWAR reduction)."""
    x = np.ascontiguousarray(x, dtype=np.uint64)
    x = x - ((x >> _U64(1)) & _M1)
    x = (x & _M2) + ((x >> _U64(2)) & _M2)
    x = (x + (x >> _U64(4))) & _M4
    return (x * _H01) >> _U64(56)


@dataclass
class PackedBlock:
    """A read block packed 2 bits per base into a uint64 word matrix.

    ``words`` is ``(n, n_words + 1)`` — one sentinel zero word per read
    (see module docstring) — and is mutated in place by
    :func:`substitute_many`.  ``bad_prefix`` is ``(n, width + 1)``: the
    running count of ambiguous/past-length bases, immutable under
    substitution (corrections only rewrite valid windows).  It is ``None``
    when the block contains no such base at all — the common case for
    full-width clean reads — so validity checks cost nothing there.
    """

    words: NDArray[np.uint64]
    bad_prefix: NDArray[np.int32] | None
    lengths: NDArray[np.int64]
    width: int

    def __len__(self) -> int:
        return self.words.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed arrays."""
        prefix = 0 if self.bad_prefix is None else self.bad_prefix.nbytes
        return self.words.nbytes + prefix + self.lengths.nbytes


def _pack_plane(
    plane: NDArray[np.uint8], n_words: int
) -> NDArray[np.uint64]:
    """Pack one zero-padded 2-bit byte plane into MSB-first words.

    Byte-pyramid: two halving rounds fuse 4 bases into each byte, then a
    big-endian uint64 view of the byte rows *is* the MSB-first word
    layout (first byte most significant) — three small vectorized passes
    instead of a 32-lane shift reduction.  On little-endian hosts the
    halving rounds read adjacent byte pairs through wider integer views,
    keeping every pass contiguous instead of stride-2.
    """
    n = plane.shape[0]
    if _LITTLE_ENDIAN:
        v2 = plane.view(np.uint16)           # even | odd << 8
        b2 = ((v2 & np.uint16(0xFF)) << np.uint16(2)) | (v2 >> np.uint16(8))
        v4 = b2.view(np.uint32)              # b2_even | b2_odd << 16
        b4 = (
            (v4 & np.uint32(0xFFFF)) << np.uint32(4)
        ) | (v4 >> np.uint32(16))
        b4 = b4.astype(np.uint8)             # values < 256: one byte each
    else:
        b2 = (plane[:, 0::2] << 2) | plane[:, 1::2]
        b4 = np.ascontiguousarray((b2[:, 0::2] << 4) | b2[:, 1::2])
    words = b4.view(">u8").astype(np.uint64)
    out = np.empty((n, n_words + 1), dtype=np.uint64)
    out[:, :n_words] = words
    out[:, n_words] = 0
    return out


def pack_block(
    codes: NDArray[np.uint8], lengths: NDArray[np.int64] | NDArray[np.int32]
) -> PackedBlock:
    """Pack a 2-bit code matrix (``INVALID_CODE`` for ambiguous/padding)
    into a :class:`PackedBlock`."""
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.ndim != 2:
        raise CodecError(f"codes must be 2-D, got shape {codes.shape}")
    n, width = codes.shape
    lengths64 = np.ascontiguousarray(lengths, dtype=np.int64)
    if lengths64.shape != (n,):
        raise CodecError(
            f"lengths shape {lengths64.shape} != (n_reads,) = ({n},)"
        )
    n_words = (width + BASES_PER_WORD - 1) // BASES_PER_WORD
    padded_width = n_words * BASES_PER_WORD
    bad = codes == INVALID_CODE
    bad_prefix: NDArray[np.int32] | None = None
    if bad.any():
        clean = np.where(bad, np.uint8(0), codes)
        bad_prefix = np.zeros((n, width + 1), dtype=np.int32)
        bad_prefix[:, 1:] = np.cumsum(bad, axis=1, dtype=np.int32)
    else:
        clean = codes
    if padded_width != width:
        pad = np.zeros((n, padded_width - width), dtype=np.uint8)
        clean = np.concatenate([clean, pad], axis=1)
    return PackedBlock(
        words=_pack_plane(clean, n_words),
        bad_prefix=bad_prefix,
        lengths=lengths64,
        width=width,
    )


def unpack_block(packed: PackedBlock) -> NDArray[np.uint8]:
    """Inverse of :func:`pack_block`: the ``(n, width)`` uint8 code matrix
    with ``INVALID_CODE`` restored at every ambiguous/past-length base."""
    n = len(packed)
    n_words = packed.words.shape[1] - 1
    lanes = (
        packed.words[:, :n_words, None] >> _LANE_SHIFTS
    ) & _U64(3)
    codes = lanes.astype(np.uint8).reshape(n, n_words * BASES_PER_WORD)
    codes = np.ascontiguousarray(codes[:, : packed.width])
    if packed.bad_prefix is not None:
        bad = np.diff(packed.bad_prefix, axis=1) > 0
        codes[bad] = INVALID_CODE
    return codes


def _extract(
    matrix: NDArray[np.uint64],
    rows: NDArray[np.int64],
    starts: NDArray[np.int64],
    w: int,
) -> NDArray[np.uint64]:
    """The two-word shift/OR window extraction on one packed plane."""
    q = starts >> 5
    r2 = ((starts & 31) << 1).astype(np.uint64)  # 2r, <= 62
    # Flat takes instead of 2-D fancy gathers; indices were validated by
    # the caller, so bounds re-checking (mode="raise") buys nothing.
    flat_idx = rows * matrix.shape[1] + q
    flat = matrix.reshape(-1)
    hi = flat.take(flat_idx, mode="clip")
    lo = flat.take(flat_idx + 1, mode="clip")
    # (lo >> (64 - 2r)) via two shifts: 64 - 2r can be 64, which a single
    # uint64 shift must not perform; (63 - 2r) + 1 never exceeds 63 + 1.
    combined = (hi << r2) | ((lo >> (_U64(63) - r2)) >> _U64(1))
    return combined >> _U64(64 - 2 * w)


def windows_at(
    packed: PackedBlock,
    rows: NDArray[np.int64],
    starts: NDArray[np.int64],
    w: int,
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """Window ids at arbitrary ``(row, start)`` sites, plus validity.

    The packed replacement for the corrector's per-column gather-and-
    repack: two word gathers and a handful of whole-array shifts
    regardless of ``w``.  ``starts[i] + w`` must not exceed the block
    width.  A window is invalid when it touches an ambiguous or
    past-length base.
    """
    _check_window(w)
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    if rows.shape != starts.shape:
        raise CodecError(
            f"rows shape {rows.shape} != starts shape {starts.shape}"
        )
    if starts.size and (starts.min() < 0 or starts.max() + w > packed.width):
        raise CodecError(
            f"window [start, start+{w}) out of range for width {packed.width}"
        )
    ids = _extract(packed.words, rows, starts, w)
    prefix = packed.bad_prefix
    if prefix is None:
        return ids, np.ones(rows.shape[0], dtype=np.bool_)
    valid = prefix[rows, starts + w] == prefix[rows, starts]
    return ids, valid


def windows_at_unchecked(
    packed: PackedBlock,
    rows: NDArray[np.int64],
    starts: NDArray[np.int64],
    w: int,
) -> tuple[NDArray[np.uint64], NDArray[np.bool_] | None]:
    """:func:`windows_at` without argument validation or an all-ones mask.

    For callers that construct ``(rows, starts)`` from a validated tile
    geometry (the correction wavefront): returns ``valid=None`` when the
    block has no ambiguous base at all, so fully clean blocks skip both
    the validity gathers and the mask allocation.
    """
    ids = _extract(packed.words, rows, starts, w)
    prefix = packed.bad_prefix
    if prefix is None:
        return ids, None
    return ids, prefix[rows, starts + w] == prefix[rows, starts]


def window_id_matrix(
    packed: PackedBlock, w: int, step: int = 1
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """All window ids of every read at the given stride: packed
    equivalent of :func:`repro.kmer.codec.block_window_ids`.

    Returns ``(ids, valid)`` shaped ``(n, n_starts)``; ``valid`` is False
    for windows extending past a read's length or touching an ambiguous
    base.  Bit-identical to the unpacked version (both compute ids over
    zeroed ambiguous lanes), in O(1) vectorized passes instead of O(w).
    """
    _check_window(w)
    if step < 1:
        raise CodecError(f"step must be >= 1, got {step}")
    n = len(packed)
    if packed.width < w:
        return (
            np.empty((n, 0), dtype=np.uint64),
            np.empty((n, 0), dtype=np.bool_),
        )
    starts = np.arange(0, packed.width - w + 1, step, dtype=np.int64)
    q = starts >> 5
    r2 = ((starts & 31) << 1).astype(np.uint64)
    hi = packed.words[:, q]
    lo = packed.words[:, q + 1]
    combined = (hi << r2[None, :]) | (
        (lo >> (_U64(63) - r2[None, :])) >> _U64(1)
    )
    ids = combined >> _U64(64 - 2 * w)
    within = (starts[None, :] + w) <= packed.lengths[:, None]
    if packed.bad_prefix is None:
        return ids, within
    nbad = packed.bad_prefix[:, starts + w] - packed.bad_prefix[:, starts]
    valid = within & (nbad == 0)
    return ids, valid


def hamming_many(
    a: NDArray[np.uint64], b: NDArray[np.uint64], w: int
) -> NDArray[np.int64]:
    """Per-pair base-level Hamming distance between window ids.

    ORs the odd and even bit planes of the XOR so each differing base
    contributes exactly one set bit, then popcounts — constant vectorized
    passes for any batch, replacing the per-base scalar loop of
    :func:`repro.kmer.neighbors.hamming_distance`.
    """
    _check_window(w)
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    diff = (a ^ b) & _U64((1 << (2 * w)) - 1)
    one_bit_per_base = (diff | (diff >> _U64(1))) & _M1
    return popcount64(one_bit_per_base).astype(np.int64)


def substitute_many(
    codes: NDArray[np.uint8],
    packed: PackedBlock,
    rows: NDArray[np.int64],
    starts: NDArray[np.int64],
    old_ids: NDArray[np.uint64],
    new_ids: NDArray[np.uint64],
    w: int,
) -> NDArray[np.int64]:
    """Write many winning tiles at once; returns bases changed per site.

    For every site ``i`` the window ``[starts[i], starts[i]+w)`` of read
    ``rows[i]`` currently spells ``old_ids[i]`` and is rewritten to
    ``new_ids[i]`` — in the byte matrix by scattering only the differing
    bases and in the packed words by an XOR of the id diff placed at the
    window's bit position.  ``applied`` is the popcount-derived number
    of differing bases per site.

    Sites must target distinct rows within one call (the corrector's
    wavefront guarantees this: one site per read per step) — overlapping
    windows in a single batch would race their fancy-index writes.
    """
    _check_window(w)
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    old = np.ascontiguousarray(old_ids, dtype=np.uint64)
    new = np.ascontiguousarray(new_ids, dtype=np.uint64)
    diff = (old ^ new) & _U64((1 << (2 * w)) - 1)
    one_bit = (diff | (diff >> _U64(1))) & _M1
    applied = popcount64(one_bit).astype(np.int64)
    if rows.size == 0:
        return applied
    # Byte matrix: write only the differing bases (typically one or two
    # per site, versus a full w-wide window rewrite).
    shifts = ((w - 1 - np.arange(w, dtype=np.int64)) * 2).astype(np.uint64)
    site_i, col_i = np.nonzero((diff[:, None] >> shifts[None, :]) & _U64(3))
    codes[rows[site_i], starts[site_i] + col_i] = (
        (new[site_i] >> shifts[col_i]) & _U64(3)
    ).astype(np.uint8)
    # Packed words: XOR the diff into the (at most two) covering words.
    q = starts >> 5
    r = starts & 31
    # Bases of the window landing in the second word (0 when it fits).
    low_n = np.maximum(0, w - (BASES_PER_WORD - r))
    hi_part = diff >> (low_n.astype(np.uint64) << _U64(1))
    # hi occupies bases r .. r + (w - low_n) - 1 of word q; the shift is
    # 0 when the window spans into word q+1 and <= 62 otherwise.
    hi_shift = (64 - 2 * r - 2 * (w - low_n)).astype(np.uint64)
    packed.words[rows, q] ^= hi_part << hi_shift
    two_low = (low_n << 1).astype(np.uint64)
    lo_mask = (_U64(1) << two_low) - _U64(1)
    lo_part = diff & lo_mask
    # Shift 64 - 2*low_n can be 64 (low_n = 0, lo_part = 0): split it.
    lo_shifted = (lo_part << (_U64(63) - two_low)) << _U64(1)
    packed.words[rows, q + 1] ^= lo_shifted
    return applied
