"""Tile extraction.

A *tile* in Reptile is the concatenation of two k-mers that overlap by a
fixed number of bases, i.e. a window of ``2k - overlap`` bases.  Because a
tile has almost twice the characters of a k-mer, correcting at the tile level
has far fewer Hamming-neighbour candidates, which is the source of Reptile's
accuracy.  Tile ids are 2-bit codes like k-mer ids, and the paper notes the
tile id needs a wide integer ("up to 2k characters"); with uint64 ids this
bounds ``2k - overlap`` at 32 bases.

Consecutive tiles of a read advance by ``k - overlap`` bases so that the
second k-mer of tile *i* is the first k-mer of tile *i+1* — the "adjoining
k-mers" structure the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError
from repro.kmer.codec import MAX_K, window_ids


@dataclass(frozen=True)
class TileShape:
    """Geometry of the tiling: k-mer length and intra-tile overlap.

    ``step`` is the distance between the start positions of the two k-mers
    forming a tile, and equally the stride between consecutive tiles.
    """

    k: int
    overlap: int

    def __post_init__(self) -> None:
        if not 1 <= self.k <= MAX_K:
            raise CodecError(f"k must be in [1, {MAX_K}], got {self.k}")
        if not 0 <= self.overlap < self.k:
            raise CodecError(
                f"overlap must be in [0, k), got {self.overlap} for k={self.k}"
            )
        if self.length > MAX_K:
            raise CodecError(
                f"tile length 2k - overlap = {self.length} exceeds {MAX_K}; "
                "use a smaller k or a larger overlap"
            )

    @property
    def length(self) -> int:
        """Number of bases in a tile: ``2k - overlap``."""
        return 2 * self.k - self.overlap

    @property
    def step(self) -> int:
        """Stride between consecutive tile (and k-mer) start positions."""
        return self.k - self.overlap

    def tile_starts(self, read_length: int) -> NDArray[np.int64]:
        """Start offsets of every whole tile within a read of given length."""
        last = read_length - self.length
        if last < 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(0, last + 1, self.step, dtype=np.int64)

    def kmer_starts(self, read_length: int) -> NDArray[np.int64]:
        """Start offsets of the k-mers participating in the tiling."""
        last = read_length - self.k
        if last < 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(0, last + 1, self.step, dtype=np.int64)


def tile_length(k: int, overlap: int) -> int:
    """Convenience accessor for ``TileShape(k, overlap).length``."""
    return TileShape(k, overlap).length


def tile_ids(
    codes: NDArray[np.uint8], shape: TileShape
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """All tile ids of a read (2-bit code array), plus a validity mask.

    Tiles start every ``shape.step`` bases; a tile containing an ambiguous
    base is reported invalid.  Implemented by slicing the full window-id
    array with the tile stride — a view-based subsample, no recompute.
    """
    all_ids, all_valid = window_ids(codes, shape.length)
    return all_ids[:: shape.step], all_valid[:: shape.step]


def tile_id_from_kmers(first: int, second: int, shape: TileShape) -> int:
    """Compose a tile id from its two overlapping k-mer ids.

    The low ``2*overlap`` bits of ``first`` must equal the high ``2*overlap``
    bits of ``second`` (they encode the same bases); a mismatch raises
    :class:`~repro.errors.CodecError`.
    """
    k, o = shape.k, shape.overlap
    first = int(first)
    second = int(second)
    if o > 0:
        first_tail = first & ((1 << (2 * o)) - 1)
        second_head = second >> (2 * (k - o))
        if first_tail != second_head:
            raise CodecError(
                "k-mers do not overlap consistently: "
                f"suffix {first_tail:#x} != prefix {second_head:#x}"
            )
    suffix_len = k - o  # bases contributed by the second k-mer
    suffix = second & ((1 << (2 * suffix_len)) - 1)
    return (first << (2 * suffix_len)) | suffix


def split_tile_id(tile: int, shape: TileShape) -> tuple[int, int]:
    """Inverse of :func:`tile_id_from_kmers`: the two k-mer ids of a tile."""
    k = shape.k
    suffix_len = k - shape.overlap
    tile = int(tile)
    first = tile >> (2 * suffix_len)
    second = tile & ((1 << (2 * k)) - 1)
    return first, second
