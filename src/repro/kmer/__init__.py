"""K-mer and tile machinery: 2-bit codecs, vectorized extraction, neighbours.

Reptile works on two spectra: the *k-mer spectrum* (all length-``k``
substrings of the reads) and the *tile spectrum* (concatenations of two
overlapping k-mers, i.e. substrings of length ``2k - overlap``).  Everything
here is numpy-vectorized: a read is encoded once into a 2-bit code array and
all window ids are produced with array operations, never per-base Python
loops.
"""

from repro.kmer.codec import (
    MAX_K,
    encode_sequence,
    decode_kmer,
    kmer_ids,
    window_ids,
    block_window_ids,
    reverse_complement_id,
    canonical_id,
    is_valid_sequence,
)
from repro.kmer.tiles import TileShape, tile_ids, tile_length, tile_id_from_kmers
from repro.kmer.neighbors import (
    hamming_neighbors,
    neighbors_at_positions,
    hamming_distance,
)

__all__ = [
    "MAX_K",
    "encode_sequence",
    "decode_kmer",
    "kmer_ids",
    "window_ids",
    "block_window_ids",
    "reverse_complement_id",
    "canonical_id",
    "is_valid_sequence",
    "TileShape",
    "tile_ids",
    "tile_length",
    "tile_id_from_kmers",
    "hamming_neighbors",
    "neighbors_at_positions",
    "hamming_distance",
]
