"""2-bit DNA codec and vectorized window-id extraction.

A base maps to two bits (A=0, C=1, G=2, T=3); a window of ``w`` bases maps to
an unsigned 64-bit id with the leftmost base in the most significant position,
exactly like Reptile's integer k-mer IDs.  ``w`` may be at most 32
(:data:`MAX_K`).

Ambiguous bases (``N`` and any other IUPAC code) are tolerated on input:
:func:`encode_sequence` marks them with :data:`INVALID_CODE` and
:func:`window_ids` reports a validity mask so windows touching an ambiguous
base can be skipped, which is what Reptile does.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError

#: Largest window length whose 2-bit code fits in a uint64.
MAX_K = 32

#: Sentinel code for a base that is not one of A/C/G/T.
INVALID_CODE = np.uint8(0xFF)

_BASES = "ACGT"

# ASCII lookup table: both cases of ACGT map to 0..3, everything else to 0xFF.
_ENCODE_LUT = np.full(256, INVALID_CODE, dtype=np.uint8)
for _i, _b in enumerate(_BASES):
    _ENCODE_LUT[ord(_b)] = _i
    _ENCODE_LUT[ord(_b.lower())] = _i


def encode_sequence(
    seq: str | bytes | NDArray[np.uint8],
) -> NDArray[np.uint8]:
    """Encode a DNA sequence into an array of 2-bit codes (dtype uint8).

    Ambiguous bases become :data:`INVALID_CODE`; no exception is raised so
    callers can decide window-by-window (see :func:`window_ids`).

    Parameters
    ----------
    seq:
        A ``str``, ``bytes``, or uint8 array of ASCII codes.
    """
    if isinstance(seq, str):
        raw = np.frombuffer(seq.encode("ascii", errors="replace"), dtype=np.uint8)
    elif isinstance(seq, (bytes, bytearray, memoryview)):
        raw = np.frombuffer(bytes(seq), dtype=np.uint8)
    else:
        raw = np.asarray(seq, dtype=np.uint8)
    codes: NDArray[np.uint8] = _ENCODE_LUT[raw]
    return codes


def is_valid_sequence(seq: str | bytes) -> bool:
    """True when every base of ``seq`` is one of A/C/G/T (any case)."""
    codes = encode_sequence(seq)
    return bool((codes != INVALID_CODE).all())


def _check_window(w: int) -> None:
    if not 1 <= w <= MAX_K:
        raise CodecError(f"window length must be in [1, {MAX_K}], got {w}")


def window_ids(
    codes: NDArray[np.uint8], w: int
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """All length-``w`` window ids of a 2-bit code array, plus validity.

    Returns ``(ids, valid)`` where ``ids`` has dtype uint64 and length
    ``len(codes) - w + 1`` and ``valid[i]`` is False when window ``i``
    contains an ambiguous base (its id is meaningless and must be skipped).

    The computation is a vectorized polynomial evaluation over a sliding
    window view — no Python-level per-base loop.
    """
    _check_window(w)
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.shape[0]
    if n < w:
        return (
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=bool),
        )
    windows = np.lib.stride_tricks.sliding_window_view(codes, w)
    valid: NDArray[np.bool_] = ~(windows == INVALID_CODE).any(axis=1)
    # Shift weights: leftmost base is most significant.
    shifts = np.arange(w - 1, -1, -1, dtype=np.uint64) * np.uint64(2)
    # 0xFF codes would corrupt the ids; zero them first (masked out anyway).
    clean = np.where(windows == INVALID_CODE, np.uint8(0), windows)
    ids: NDArray[np.uint64] = (clean.astype(np.uint64) << shifts).sum(
        axis=1, dtype=np.uint64
    )
    return ids, valid


def kmer_ids(
    codes: NDArray[np.uint8], k: int
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """Alias of :func:`window_ids` named for the k-mer use case."""
    return window_ids(codes, k)


def decode_kmer(kid: int, k: int) -> str:
    """Decode a window id back to its DNA string (inverse of encoding)."""
    _check_window(k)
    kid = int(kid)
    if kid < 0 or kid >= 1 << (2 * k):
        raise CodecError(f"id {kid} out of range for k={k}")
    out = []
    for shift in range(2 * (k - 1), -1, -2):
        out.append(_BASES[(kid >> shift) & 3])
    return "".join(out)


def reverse_complement_id(
    kid: int | NDArray[np.uint64], k: int
) -> int | NDArray[np.uint64]:
    """Reverse-complement of a window id (or array of ids).

    Complementing a 2-bit base is ``3 - code`` (A<->T, C<->G); reversal swaps
    base positions end for end.
    """
    _check_window(k)
    ids = np.asarray(kid, dtype=np.uint64)
    out = np.zeros_like(ids)
    work = ids.copy()
    for _ in range(k):
        out = (out << np.uint64(2)) | (np.uint64(3) - (work & np.uint64(3)))
        work >>= np.uint64(2)
    if np.isscalar(kid) or np.asarray(kid).ndim == 0:
        return int(out)
    return out


def canonical_id(
    kid: int | NDArray[np.uint64], k: int
) -> int | NDArray[np.uint64]:
    """The lexicographically smaller of a window id and its reverse
    complement — the strand-independent representative."""
    rc = reverse_complement_id(kid, k)
    if np.isscalar(kid) or np.asarray(kid).ndim == 0:
        return min(int(kid), int(rc))
    ids = np.asarray(kid, dtype=np.uint64)
    smaller: NDArray[np.uint64] = np.minimum(ids, rc)
    return smaller


def block_window_ids(
    codes: NDArray[np.uint8],
    lengths: NDArray[np.int64] | NDArray[np.int32],
    w: int,
    step: int = 1,
) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
    """Window ids for a whole batch of reads at once.

    ``codes`` is a (n_reads, width) 2-bit code matrix (padded rows hold
    :data:`INVALID_CODE`); ``lengths`` gives each read's true length.
    Returns ``(ids, valid)``, both shaped (n_reads, n_starts) where starts
    are ``0, step, 2*step, ...`` up to ``width - w``.  ``valid`` is False for
    windows extending past a read's length or touching an ambiguous base.

    The id computation is a rolling polynomial over ``w`` shifted column
    slices — O(w) vectorized passes, no per-read Python loop and no
    (n, starts, w) uint64 materialization.
    """
    _check_window(w)
    if step < 1:
        raise CodecError(f"step must be >= 1, got {step}")
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    lens = np.asarray(lengths, dtype=np.int64)
    n, width = codes.shape
    if width < w:
        return (
            np.empty((n, 0), dtype=np.uint64),
            np.empty((n, 0), dtype=bool),
        )
    starts = np.arange(0, width - w + 1, step, dtype=np.int64)
    s = starts.shape[0]
    ids = np.zeros((n, s), dtype=np.uint64)
    bad = np.zeros((n, s), dtype=bool)
    clean = np.where(codes == INVALID_CODE, np.uint8(0), codes)
    invalid = codes == INVALID_CODE
    for j in range(w):
        cols = starts + j
        ids <<= np.uint64(2)
        ids |= clean[:, cols].astype(np.uint64)
        bad |= invalid[:, cols]
    within = (starts[None, :] + w) <= lens[:, None]
    return ids, within & ~bad


def decode_sequence(codes: NDArray[np.uint8]) -> str:
    """Decode a 2-bit code array back to a DNA string ('N' for invalid)."""
    codes = np.asarray(codes, dtype=np.uint8)
    lut = np.frombuffer(b"ACGT", dtype=np.uint8)
    out = np.full(codes.shape, ord("N"), dtype=np.uint8)
    ok = codes < 4
    out[ok] = lut[codes[ok]]
    return out.tobytes().decode("ascii")
