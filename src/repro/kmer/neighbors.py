"""Hamming-distance neighbour enumeration for window ids.

Reptile's correction step replaces an erroneous tile with a *solid*
Hamming-distance neighbour.  Candidate generation is restricted to positions
whose base quality is low (substitution errors concentrate there), which both
prunes the search and reflects how sequencing errors actually occur.

All generators work on integer ids, vectorized over positions and alternative
bases; distance-2 candidates are produced as the pairwise composition of
distance-1 flips.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.errors import CodecError
from repro.kmer.codec import MAX_K


def _check(w: int) -> None:
    if not 1 <= w <= MAX_K:
        raise CodecError(f"window length must be in [1, {MAX_K}], got {w}")


def hamming_distance(a: int, b: int, w: int) -> int:
    """Number of base positions at which two window ids differ."""
    _check(w)
    diff = int(a) ^ int(b)
    count = 0
    for _ in range(w):
        if diff & 3:
            count += 1
        diff >>= 2
    return count


def neighbors_at_positions(
    wid: int, w: int, positions: NDArray[np.int64] | list[int]
) -> NDArray[np.uint64]:
    """All ids obtained by substituting one base at one of ``positions``.

    ``positions`` are 0-based offsets from the *left* end of the window
    (matching read coordinates).  Returns ``3 * len(positions)`` ids
    (3 alternative bases per position), dtype uint64, deduplicated is NOT
    applied (positions are distinct so ids are distinct).
    """
    _check(w)
    pos = np.asarray(positions, dtype=np.int64)
    if pos.size == 0:
        return np.empty(0, dtype=np.uint64)
    if pos.min() < 0 or pos.max() >= w:
        raise CodecError(f"positions must be in [0, {w}), got {positions!r}")
    wid64 = np.uint64(wid)
    # Bit shift of each position: leftmost base is most significant.
    shifts = ((w - 1 - pos) * 2).astype(np.uint64)
    current = (wid64 >> shifts) & np.uint64(3)
    # For each position, the three alternative base codes.
    alts = (current[:, None] + np.arange(1, 4, dtype=np.uint64)) & np.uint64(3)
    cleared = wid64 & ~(np.uint64(3) << shifts)
    out = cleared[:, None] | (alts << shifts[:, None])
    return out.ravel()


def substitute_at(
    wids: NDArray[np.uint64], w: int, positions: NDArray[np.int64]
) -> NDArray[np.uint64]:
    """Distance-1 substitutions for many (window, position) pairs at once.

    ``wids[i]`` and ``positions[i]`` describe one substitution site; the
    result row ``i`` holds the three ids obtained by replacing the base of
    ``wids[i]`` at ``positions[i]`` with each alternative, in the same
    ``(current+1, current+2, current+3) & 3`` order
    :func:`neighbors_at_positions` uses — so flattening rows reproduces the
    scalar enumeration exactly.  This is the batched kernel the corrector's
    candidate generation and the Step IV prefetch planner share.
    """
    _check(w)
    wids = np.ascontiguousarray(wids, dtype=np.uint64)
    pos = np.ascontiguousarray(positions, dtype=np.int64)
    if wids.shape != pos.shape:
        raise CodecError(
            f"wids shape {wids.shape} != positions shape {pos.shape}"
        )
    if pos.size == 0:
        return np.empty((0, 3), dtype=np.uint64)
    if pos.min() < 0 or pos.max() >= w:
        raise CodecError(f"positions must be in [0, {w})")
    shifts = ((w - 1 - pos) * 2).astype(np.uint64)
    current = (wids >> shifts) & np.uint64(3)
    alts = (current[:, None] + np.arange(1, 4, dtype=np.uint64)) & np.uint64(3)
    cleared = wids & ~(np.uint64(3) << shifts)
    return cleared[:, None] | (alts << shifts[:, None])


def hamming_neighbors(wid: int, w: int, d: int = 1) -> NDArray[np.uint64]:
    """All ids within Hamming distance exactly ``d`` of ``wid`` (d in {1, 2}).

    Distance-1 yields ``3w`` ids; distance-2 yields ``9·C(w,2)`` ids.  The
    result is sorted and unique.
    """
    _check(w)
    if d == 1:
        out = neighbors_at_positions(wid, w, np.arange(w))
        out.sort()
        return out
    if d == 2:
        first = neighbors_at_positions(wid, w, np.arange(w))
        # For every distance-1 neighbour, flip a *later* position to avoid
        # generating each pair twice or undoing the first flip.
        chunks: list[NDArray[np.uint64]] = []
        per_pos = first.reshape(w, 3)
        for p in range(w - 1):
            later = np.arange(p + 1, w)
            for nb in per_pos[p]:
                chunks.append(neighbors_at_positions(int(nb), w, later))
        if not chunks:
            return np.empty(0, dtype=np.uint64)
        out = np.unique(np.concatenate(chunks))
        return out
    raise CodecError(f"only Hamming distances 1 and 2 are supported, got {d}")


def neighbors_many(
    wids: NDArray[np.uint64],
    w: int,
    positions_per_wid: list[NDArray[np.int64]],
) -> tuple[NDArray[np.uint64], NDArray[np.int64]]:
    """Batch candidate generation for several windows at once.

    Returns ``(candidates, owner_index)`` where ``owner_index[i]`` is the
    index into ``wids`` whose substitution produced ``candidates[i]``.  Used
    by the corrector to batch remote spectrum lookups across a whole read.
    """
    cands: list[NDArray[np.uint64]] = []
    owners: list[NDArray[np.int64]] = []
    for i, (wid, pos) in enumerate(zip(np.asarray(wids, dtype=np.uint64),
                                       positions_per_wid)):
        c = neighbors_at_positions(int(wid), w, pos)
        cands.append(c)
        owners.append(np.full(c.shape[0], i, dtype=np.int64))
    if not cands:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    return np.concatenate(cands), np.concatenate(owners)
