"""Dataset profiles matching Table I of the paper.

Each profile carries the full-size parameters — number of reads, read
length, genome size, coverage — exactly as Table I reports them.  Full-size
instances obviously cannot be synthesized here; ``scaled()`` produces a
small instance that preserves coverage, read length and error character
while shrinking the genome, and the performance model consumes the
*full-size* numbers when projecting to BlueGene/Q scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.genome import random_genome
from repro.datasets.reads import ErrorModel, ReadSimulator, SimulatedDataset


@dataclass(frozen=True)
class DatasetProfile:
    """Full-scale dataset description (one row of Table I).

    ``reported_coverage`` is the coverage value printed in the paper's
    Table I.  For E.Coli the paper's own formula
    (length x reads / genome size) gives ~197X while the table prints
    96X — we carry the reported value (used for display and for sizing
    scaled instances) and expose the formula value as
    :attr:`formula_coverage`.
    """

    name: str
    n_reads: int
    read_length: int
    genome_size: int
    reported_coverage: float = 0.0
    error_model: ErrorModel = ErrorModel()

    @property
    def coverage(self) -> float:
        """The paper-reported coverage (falls back to the formula)."""
        return self.reported_coverage or self.formula_coverage

    @property
    def formula_coverage(self) -> float:
        """(length * number of reads) / genome size — the Table I formula."""
        return self.n_reads * self.read_length / self.genome_size

    @property
    def total_bases(self) -> int:
        return self.n_reads * self.read_length

    def scaled(
        self,
        genome_size: int,
        seed: int = 0,
        localized_errors: bool | None = None,
    ) -> SimulatedDataset:
        """Synthesize a shrunken instance preserving coverage and length.

        ``localized_errors`` overrides the profile's burst setting (used by
        the load-balance experiments, which need both variants).
        """
        if genome_size < self.read_length:
            raise ValueError("scaled genome must be at least one read long")
        em = self.error_model
        if localized_errors is not None:
            em = replace(em, localized=localized_errors)
        genome = random_genome(genome_size, seed=seed)
        sim = ReadSimulator(
            genome=genome,
            read_length=self.read_length,
            error_model=em,
            seed=seed + 1,
        )
        return sim.simulate(coverage=self.coverage)

    def scaled_reads(self, genome_size: int) -> int:
        """Read count of a scaled instance (coverage-preserving)."""
        return max(1, int(round(self.coverage * genome_size / self.read_length)))


#: Table I, row 1: E.Coli — 8,874,761 reads, 102 chars, 4.6e6 genome, 96X.
ECOLI = DatasetProfile(
    name="E.Coli",
    n_reads=8_874_761,
    read_length=102,
    genome_size=4_600_000,
    reported_coverage=96.0,
)

#: Table I, row 2: Drosophila — 95,674,872 reads, 96 chars, 1.22e8, 75X.
DROSOPHILA = DatasetProfile(
    name="Drosophila",
    n_reads=95_674_872,
    read_length=96,
    genome_size=122_000_000,
    reported_coverage=75.0,
)

#: Table I, row 3: Human — 1,549,111,800 reads, 102 chars, 3.3e9, 47X.
HUMAN = DatasetProfile(
    name="Human",
    n_reads=1_549_111_800,
    read_length=102,
    genome_size=3_300_000_000,
    reported_coverage=47.0,
)

PROFILES: dict[str, DatasetProfile] = {
    p.name: p for p in (ECOLI, DROSOPHILA, HUMAN)
}
