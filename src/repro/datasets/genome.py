"""Random reference genomes.

Genomes are uniform random A/C/G/T strings held as 2-bit code arrays.  A
uniform random genome of length G has an expected k-mer collision rate of
G²/4^k, negligible for the k used here, so genuine genomic k-mers are
(almost surely) distinct from error k-mers — the property spectrum-based
correction relies on.
"""

from __future__ import annotations

import numpy as np

from repro.kmer.codec import decode_sequence


def random_genome(length: int, seed: int | np.random.Generator = 0) -> np.ndarray:
    """A random genome as a 2-bit code array (uint8 values 0..3)."""
    if length <= 0:
        raise ValueError("genome length must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def mutate_genome(
    genome: np.ndarray,
    rate: float,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Substitute a fraction ``rate`` of bases; returns (mutant, positions).

    Used to build diploid-like or strain-variant references for robustness
    tests (true variants must *not* be "corrected" away when coverage
    supports them).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    out = genome.copy()
    n = out.shape[0]
    count = int(round(rate * n))
    if count == 0:
        return out, np.empty(0, dtype=np.int64)
    positions = rng.choice(n, size=count, replace=False)
    # Shift by 1..3 mod 4 guarantees a different base.
    out[positions] = (out[positions] + rng.integers(1, 4, size=count, dtype=np.uint8)) % 4
    positions.sort()
    return out, positions.astype(np.int64)


def genome_to_string(genome: np.ndarray) -> str:
    """Decode a genome code array to its DNA string."""
    return decode_sequence(genome)
