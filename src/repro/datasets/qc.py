"""Dataset quality-control statistics.

Real runs have no ground truth; what they do have is the reads themselves
and their quality strings.  This module derives the quantities the rest
of the pipeline wants from those alone:

* :func:`quality_profile` — mean reported quality per read position (the
  3' degradation Illumina shows and the simulator reproduces);
* :func:`estimate_error_rate` — the expected substitution rate implied by
  the Phred scores (``P(err) = 10^(-Q/10)``), which feeds the analytic
  threshold policy when the true rate is unknown;
* :func:`base_composition` — A/C/G/T/N fractions (GC content, N
  contamination);
* :func:`ReadSetReport` — everything bundled for display.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.io.records import ReadBlock
from repro.kmer.codec import INVALID_CODE


def _position_mask(block: ReadBlock) -> np.ndarray:
    """Boolean (n, width) mask of in-read positions."""
    width = block.max_length
    return np.arange(width)[None, :] < block.lengths[:, None]


def quality_profile(block: ReadBlock) -> np.ndarray:
    """Mean reported quality at each read position (float64, len=width).

    Positions covered by no read report NaN.
    """
    if len(block) == 0:
        return np.empty(0, dtype=np.float64)
    mask = _position_mask(block)
    sums = (block.quals.astype(np.float64) * mask).sum(axis=0)
    counts = mask.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / counts, np.nan)


def estimate_error_rate(block: ReadBlock) -> float:
    """Expected substitution rate implied by the Phred scores.

    Averages ``10^(-Q/10)`` over every base.  Note this is the rate the
    *sequencer claims*: real (and this package's simulated) quality
    strings are routinely miscalibrated — the simulator gives error bases
    Q~12 (claimed 6% error probability) although they are certainly
    wrong — so treat the result as an order-of-magnitude input to the
    threshold policy, not ground truth.
    """
    if len(block) == 0:
        return 0.0
    mask = _position_mask(block)
    q = block.quals.astype(np.float64)
    p_err = np.power(10.0, -q / 10.0)
    total = mask.sum()
    return float((p_err * mask).sum() / total) if total else 0.0


def base_composition(block: ReadBlock) -> dict[str, float]:
    """Fractions of A/C/G/T/N over all read bases."""
    if len(block) == 0:
        return {b: 0.0 for b in "ACGTN"}
    mask = _position_mask(block)
    codes = block.codes
    total = int(mask.sum())
    out = {}
    for i, base in enumerate("ACGT"):
        out[base] = float(((codes == i) & mask).sum() / total)
    out["N"] = float(((codes == INVALID_CODE) & mask).sum() / total)
    return out


@dataclass(frozen=True)
class ReadSetReport:
    """Summary of a read set's basic properties."""

    n_reads: int
    min_length: int
    max_length: int
    mean_length: float
    total_bases: int
    gc_content: float
    n_fraction: float
    mean_quality: float
    estimated_error_rate: float

    @classmethod
    def from_block(cls, block: ReadBlock) -> "ReadSetReport":
        if len(block) == 0:
            return cls(0, 0, 0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
        comp = base_composition(block)
        mask = _position_mask(block)
        total = int(mask.sum())
        mean_q = float(
            (block.quals.astype(np.float64) * mask).sum() / total
        )
        return cls(
            n_reads=len(block),
            min_length=int(block.lengths.min()),
            max_length=int(block.lengths.max()),
            mean_length=float(block.lengths.mean()),
            total_bases=total,
            gc_content=comp["C"] + comp["G"],
            n_fraction=comp["N"],
            mean_quality=mean_q,
            estimated_error_rate=estimate_error_rate(block),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_reads} reads, {self.min_length}-{self.max_length} bp "
            f"(mean {self.mean_length:.1f}), GC {self.gc_content:.2f}, "
            f"N {self.n_fraction:.4f}, mean Q {self.mean_quality:.1f}, "
            f"est. error rate {self.estimated_error_rate:.4f}"
        )
