"""Illumina-like read simulation with substitution errors and qualities.

The simulator reproduces the dataset properties the paper's evaluation
depends on:

* fixed-length reads at a chosen coverage (Table I: 96X/75X/47X);
* substitution errors whose probability rises toward the 3' end of a read
  (the Illumina error profile Reptile targets);
* per-base Phred-like quality scores that are lower at error positions
  (what makes Reptile's quality-restricted candidate generation work);
* an optional **localized-burst** mode in which contiguous stretches of the
  *file* carry a multiplied error rate — "the errors appear localized in
  several parts of the file" — which is the cause of the load imbalance
  Fig. 4 measures.

Ground truth (error positions and error-free bases) is retained so
correction accuracy (gain/sensitivity) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io.records import ReadBlock


@dataclass(frozen=True)
class ErrorModel:
    """Substitution error and quality model.

    Attributes
    ----------
    base_rate:
        Mean per-base substitution probability across a read.
    positional_slope:
        Linear growth of the error rate along the read; the rate at the 3'
        end is ``(1 + positional_slope)`` times the rate at the 5' end,
        renormalized to preserve ``base_rate`` as the mean.
    localized:
        When True, contiguous spans of the read file have their error rate
        multiplied by ``burst_multiplier``.
    burst_fraction:
        Fraction of reads (by file position) inside bursts.
    burst_count:
        Number of distinct burst regions spread across the file.
    burst_multiplier:
        Error-rate multiplier inside a burst.
    q_high / q_low:
        Mean quality for correct / erroneous bases.
    q_decay:
        Linear quality decrease from 5' to 3' end (in Phred units).
    q_noise:
        Std-dev of the Gaussian noise added to every quality score.
    """

    base_rate: float = 0.01
    positional_slope: float = 1.5
    localized: bool = False
    burst_fraction: float = 0.15
    burst_count: int = 8
    burst_multiplier: float = 5.0
    q_high: float = 38.0
    q_low: float = 12.0
    q_decay: float = 6.0
    q_noise: float = 2.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_rate < 0.5:
            raise ValueError("base_rate must be in [0, 0.5)")
        if self.positional_slope < 0:
            raise ValueError("positional_slope must be non-negative")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")
        if self.burst_count < 1:
            raise ValueError("burst_count must be >= 1")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")

    def positional_rates(self, read_length: int) -> np.ndarray:
        """Per-position error probability vector with mean ``base_rate``."""
        p = np.arange(read_length, dtype=np.float64)
        if read_length > 1:
            shape = 1.0 + self.positional_slope * p / (read_length - 1)
        else:
            shape = np.ones(1)
        shape /= shape.mean()
        return np.clip(self.base_rate * shape, 0.0, 0.75)

    def read_multipliers(self, n_reads: int, rng: np.random.Generator) -> np.ndarray:
        """Per-read error multiplier implementing the localized bursts.

        Burst spans are contiguous in *file order* (read index), because
        that is what makes a contiguous chunk assignment imbalanced.
        """
        mult = np.ones(n_reads, dtype=np.float64)
        if not self.localized or self.burst_fraction == 0.0 or n_reads == 0:
            return mult
        burst_total = int(round(self.burst_fraction * n_reads))
        if burst_total == 0:
            return mult
        per_burst = max(1, burst_total // self.burst_count)
        starts = rng.choice(
            max(1, n_reads - per_burst), size=self.burst_count, replace=True
        )
        for s in starts:
            mult[s : s + per_burst] = self.burst_multiplier
        return mult


@dataclass
class SimulatedDataset:
    """A simulated dataset plus its ground truth.

    ``block`` is what the pipeline sees; ``true_codes`` and ``error_mask``
    are the oracle used by :mod:`repro.core.metrics`.  ``reverse_strand``
    marks reads sampled from the reverse genome strand (all-False unless
    the simulator's ``both_strands`` option is on); read-local coordinates
    are used throughout, so metrics need no special handling.
    """

    block: ReadBlock
    true_codes: np.ndarray
    error_mask: np.ndarray
    genome: np.ndarray
    positions: np.ndarray  # genome start coordinate of each read
    reverse_strand: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=bool)
    )

    @property
    def n_errors(self) -> int:
        """Total number of substituted bases."""
        return int(self.error_mask.sum())

    @property
    def n_reads(self) -> int:
        return len(self.block)

    @property
    def coverage(self) -> float:
        """Read coverage = reads * length / genome size (Table I formula)."""
        L = self.block.max_length
        return self.n_reads * L / self.genome.shape[0]

    def errors_per_read(self) -> np.ndarray:
        """Number of substituted bases in each read."""
        return self.error_mask.sum(axis=1).astype(np.int64)


@dataclass
class ReadSimulator:
    """Samples fixed-length reads from a genome and injects errors.

    With ``both_strands`` on, each read independently comes from the
    forward or reverse strand with equal probability (a reverse read is
    the reverse complement of its genome window) — matching real
    sequencing and requiring the corrector's
    ``count_reverse_complement`` option for full-coverage spectra.
    """

    genome: np.ndarray
    read_length: int
    error_model: ErrorModel = field(default_factory=ErrorModel)
    seed: int = 0
    both_strands: bool = False

    def __post_init__(self) -> None:
        self.genome = np.ascontiguousarray(self.genome, dtype=np.uint8)
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if self.genome.shape[0] < self.read_length:
            raise ValueError("genome shorter than read length")

    def n_reads_for_coverage(self, coverage: float) -> int:
        """Read count achieving the requested coverage."""
        if coverage <= 0:
            raise ValueError("coverage must be positive")
        return max(1, int(round(coverage * self.genome.shape[0] / self.read_length)))

    def simulate(
        self, n_reads: int | None = None, coverage: float | None = None
    ) -> SimulatedDataset:
        """Generate the dataset; specify exactly one of n_reads/coverage."""
        if (n_reads is None) == (coverage is None):
            raise ValueError("specify exactly one of n_reads or coverage")
        if n_reads is None:
            n_reads = self.n_reads_for_coverage(coverage)
        if n_reads <= 0:
            raise ValueError("n_reads must be positive")
        rng = np.random.default_rng(self.seed)
        G, L = self.genome.shape[0], self.read_length

        positions = rng.integers(0, G - L + 1, size=n_reads, dtype=np.int64)
        # Gather all reads at once: (n, L) fancy index into the genome.
        true_codes = self.genome[positions[:, None] + np.arange(L)[None, :]]

        if self.both_strands:
            reverse = rng.random(n_reads) < 0.5
            # Reverse complement the chosen rows in read-local coordinates.
            flipped = true_codes[reverse][:, ::-1]
            true_codes = true_codes.copy()
            true_codes[reverse] = (np.uint8(3) - flipped)
        else:
            reverse = np.zeros(n_reads, dtype=bool)

        rates = self.error_model.positional_rates(L)
        mult = self.error_model.read_multipliers(n_reads, rng)
        prob = np.clip(mult[:, None] * rates[None, :], 0.0, 0.75)
        error_mask = rng.random((n_reads, L)) < prob

        codes = true_codes.copy()
        n_err = int(error_mask.sum())
        if n_err:
            shift = rng.integers(1, 4, size=n_err, dtype=np.uint8)
            codes[error_mask] = (codes[error_mask] + shift) % 4

        quals = self._qualities(error_mask, rng)

        block = ReadBlock(
            ids=np.arange(1, n_reads + 1, dtype=np.int64),
            codes=codes,
            lengths=np.full(n_reads, L, dtype=np.int32),
            quals=quals,
        )
        return SimulatedDataset(
            block=block,
            true_codes=true_codes,
            error_mask=error_mask,
            genome=self.genome,
            positions=positions,
            reverse_strand=reverse,
        )

    def _qualities(
        self, error_mask: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        m = self.error_model
        n, L = error_mask.shape
        pos_drop = m.q_decay * np.arange(L, dtype=np.float64) / max(1, L - 1)
        q = np.where(error_mask, m.q_low, m.q_high) - pos_drop[None, :]
        q = q + rng.normal(0.0, m.q_noise, size=(n, L))
        return np.clip(np.rint(q), 2, 41).astype(np.uint8)
