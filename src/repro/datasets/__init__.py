"""Synthetic dataset generation.

The paper evaluates on real E.Coli / Drosophila / Human Illumina datasets
(Table I).  Those datasets (and a sequencing machine) are not available
here, so this package synthesizes the closest equivalent: random genomes,
an Illumina-like read sampler with per-base quality scores, substitution
errors whose rate rises toward the 3' end, and an optional **localized
error-burst** mode reproducing the property the paper blames for load
imbalance ("the errors appear localized in several parts of the file").

:data:`ECOLI`, :data:`DROSOPHILA` and :data:`HUMAN` carry the full-size
Table I parameters for the performance model; ``scaled(...)`` produces a
laptop-sized instance with the same coverage/length/error character.
"""

from repro.datasets.genome import random_genome, mutate_genome
from repro.datasets.reads import (
    ReadSimulator,
    SimulatedDataset,
    ErrorModel,
)
from repro.datasets.qc import (
    ReadSetReport,
    base_composition,
    estimate_error_rate,
    quality_profile,
)
from repro.datasets.profiles import (
    DatasetProfile,
    ECOLI,
    DROSOPHILA,
    HUMAN,
    PROFILES,
)

__all__ = [
    "random_genome",
    "mutate_genome",
    "ReadSimulator",
    "SimulatedDataset",
    "ErrorModel",
    "ReadSetReport",
    "base_composition",
    "estimate_error_rate",
    "quality_profile",
    "DatasetProfile",
    "ECOLI",
    "DROSOPHILA",
    "HUMAN",
    "PROFILES",
]
