"""Bloom filter over uint64 keys.

The paper notes ("a memory-efficient alternative to this step is usage of a
Bloom filter") that spectrum thresholding can be approximated with a Bloom
filter instead of exact count tables.  :class:`BloomFilter` implements a
counting-free two-pass idiom: insert every key once, and keys whose second
insertion finds all bits set are "probably repeated" — the standard trick for
filtering singleton k-mers, which dominate error-induced spectrum noise.

The filter is numpy-backed (a packed bit array) and all operations are
vectorized over key batches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.inthash import splitmix64

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


class BloomFilter:
    """Fixed-size Bloom filter for uint64 keys.

    Parameters
    ----------
    expected_items:
        Sizing target; with ``fp_rate`` determines the bit-array size and
        the number of hash functions by the textbook formulas.
    fp_rate:
        Desired false-positive probability at ``expected_items`` insertions.
    """

    __slots__ = ("_bits", "_nbits", "_k")

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        nbits = max(64, int(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
        self._nbits = nbits
        self._k = max(1, round(nbits / expected_items * math.log(2)))
        self._bits = np.zeros((nbits + 7) // 8, dtype=np.uint8)

    @property
    def num_hashes(self) -> int:
        """Number of hash functions in use."""
        return self._k

    @property
    def nbits(self) -> int:
        """Size of the bit array in bits."""
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Memory held by the bit array."""
        return self._bits.nbytes

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Bit positions, shape (len(keys), k), via double hashing."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        h1 = splitmix64(keys)
        h2 = splitmix64(keys ^ _GOLDEN) | np.uint64(1)  # odd => full-period
        i = np.arange(self._k, dtype=np.uint64)
        return ((h1[:, None] + i * h2[:, None]) % np.uint64(self._nbits)).astype(
            np.int64
        )

    def add(self, keys: np.ndarray) -> None:
        """Insert a batch of keys."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return
        pos = self._positions(keys).ravel()
        np.bitwise_or.at(self._bits, pos >> 3, (1 << (pos & 7)).astype(np.uint8))

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Probabilistic membership per key (no false negatives)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        pos = self._positions(keys)
        bits = (self._bits[pos >> 3] >> (pos & 7).astype(np.uint8)) & 1
        return bits.all(axis=1)

    def add_and_test(self, keys: np.ndarray) -> np.ndarray:
        """Insert keys, returning which were (probably) present already.

        Used for two-pass singleton filtering: on the first occurrence the
        result is False, on the second and later occurrences True.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if keys.size == 0:
            return np.empty(0, dtype=bool)
        pos = self._positions(keys)
        bits = (self._bits[pos >> 3] >> (pos & 7).astype(np.uint8)) & 1
        seen = bits.all(axis=1)
        flat = pos.ravel()
        np.bitwise_or.at(self._bits, flat >> 3, (1 << (flat & 7)).astype(np.uint8))
        return seen

    def fill_ratio(self) -> float:
        """Fraction of bits set — a saturation diagnostic."""
        return float(np.unpackbits(self._bits).sum()) / (len(self._bits) * 8)
