"""The prior work's spectrum layouts: sorted arrays with binary search.

The paper contrasts its hash tables with Shah/Jammula's design: "K-mer and
tile spectrums are stored as sorted lists with look-up operations involving
repeated binary searches over the spectrum.  A cache-aware layout ...
lowered the search time from the original O(log2 N) to O(log_{B+1} N)
where B represents the number of elements that can fit into a cache line."

Both layouts are implemented here so the ablation benchmark can measure
what the hash-table switch buys:

* :class:`SortedSpectrum` — plain sorted key array, ``np.searchsorted``
  binary search (the original layout);
* :class:`EytzingerSpectrum` — the cache-aware variant, keys permuted into
  the Eytzinger (BFS heap) order so each probe step touches a predictable
  cache line; the search itself is a vectorized level-by-level descent.

Both are immutable after construction (the prior work sorted once after
the global exchange), which is exactly the operating regime of the
correction phase.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableError


class SortedSpectrum:
    """Immutable key->count map backed by parallel sorted arrays."""

    __slots__ = ("_keys", "_counts")

    def __init__(self, keys: np.ndarray, counts: np.ndarray) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        counts = np.ascontiguousarray(counts, dtype=np.uint32)
        if keys.shape != counts.shape:
            raise HashTableError("keys and counts must have equal shapes")
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._counts = counts[order]
        if self._keys.size > 1 and (self._keys[1:] == self._keys[:-1]).any():
            raise HashTableError("duplicate keys in sorted spectrum")

    @classmethod
    def from_counthash(cls, table) -> "SortedSpectrum":
        """Snapshot a :class:`~repro.hashing.counthash.CountHash`."""
        keys, counts = table.items()
        return cls(keys, counts)

    def __len__(self) -> int:
        return self._keys.shape[0]

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._counts.nbytes

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Counts per key (0 when absent) via batched binary search."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape[0], dtype=np.uint32)
        if self._keys.size == 0 or keys.size == 0:
            return out
        pos = np.searchsorted(self._keys, keys)
        in_range = pos < self._keys.shape[0]
        hit = in_range.copy()
        hit[in_range] = self._keys[pos[in_range]] == keys[in_range]
        out[hit] = self._counts[pos[hit]]
        return out

    def get(self, key: int, default: int = 0) -> int:
        """Scalar lookup."""
        c = self.lookup(np.array([key], dtype=np.uint64))[0]
        return int(c) if c or key in self._keys else default


class EytzingerSpectrum:
    """Cache-aware sorted spectrum: keys in Eytzinger (BFS) order.

    A binary search over a sorted array strides unpredictably through
    memory; laying the implicit search tree out breadth-first makes the
    first ~log(cache) levels permanently cache-resident, which is the
    effect the prior work's cache-aware layout exploited.  Lookup descends
    the implicit tree level by level, vectorized over the whole query
    batch (each level is one gather + compare).
    """

    __slots__ = ("_keys", "_counts", "_levels", "_n")

    def __init__(self, keys: np.ndarray, counts: np.ndarray) -> None:
        base = SortedSpectrum(keys, counts)
        sorted_keys = base._keys
        sorted_counts = base._counts
        n = sorted_keys.shape[0]
        self._n = n
        # Eytzinger permutation: index 1..n in BFS order of the implicit
        # search tree maps to in-order (sorted) positions.
        perm = np.zeros(n, dtype=np.int64)
        self._build_perm(perm, sorted_pos=iter(range(n)), k=1)
        # 1-based storage; slot 0 is a sentinel.
        self._keys = np.zeros(n + 1, dtype=np.uint64)
        self._counts = np.zeros(n + 1, dtype=np.uint32)
        idx = np.arange(1, n + 1)
        self._keys[idx] = sorted_keys[perm]
        self._counts[idx] = sorted_counts[perm]
        self._levels = int(np.ceil(np.log2(n + 1))) if n else 0

    def _build_perm(self, perm: np.ndarray, sorted_pos, k: int) -> None:
        """In-order traversal of the implicit tree assigns sorted ranks."""
        n = perm.shape[0]
        stack = [(k, False)]
        while stack:
            node, expanded = stack.pop()
            if node > n:
                continue
            if expanded:
                perm[node - 1] = next(sorted_pos)
                stack.append((2 * node + 1, False))
            else:
                stack.append((node, True))
                stack.append((2 * node, False))

    def __len__(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._counts.nbytes

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Counts per key via vectorized Eytzinger descent."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape[0], dtype=np.uint32)
        if self._n == 0 or keys.size == 0:
            return out
        pos = np.ones(keys.shape[0], dtype=np.int64)
        found = np.zeros(keys.shape[0], dtype=np.int64)
        for _ in range(self._levels + 1):
            active = pos <= self._n
            if not active.any():
                break
            node_keys = self._keys[np.where(active, pos, 0)]
            eq = active & (node_keys == keys)
            found[eq] = pos[eq]
            go_right = active & (node_keys < keys)
            pos = np.where(active, 2 * pos + go_right.astype(np.int64), pos)
        hit = found > 0
        out[hit] = self._counts[found[hit]]
        return out

    def get(self, key: int, default: int = 0) -> int:
        """Scalar lookup."""
        c = self.lookup(np.array([key], dtype=np.uint64))
        return int(c[0]) if c[0] else default
