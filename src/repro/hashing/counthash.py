"""Open-addressing count hash table over uint64 keys.

This is the paper's spectrum container: "we store the k-mer and tile spectrum
in hash tables instead of arrays; this prevents any need for sorting the
arrays or for repeated binary searches."  The table is numpy-backed — three
flat arrays (keys, counts, occupancy) — so batch inserts and lookups are
vectorized across whole reads or whole incoming messages, and the memory
footprint is exactly measurable (:attr:`CountHash.nbytes`), which the paper's
per-rank memory figures rely on.

Probing is linear with a splitmix64-mixed home slot.  Batch operations
resolve collisions round-by-round on the shrinking unresolved subset, so cost
is O(rounds) numpy passes rather than O(n) Python iterations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableError
from repro.hashing.inthash import splitmix64

_MIN_CAPACITY = 64
_MAX_LOAD = 0.60


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class CountHash:
    """Mutable uint64 → uint32 count map with vectorized batch operations.

    Parameters
    ----------
    capacity:
        Initial number of slots (rounded up to a power of two).  The table
        grows automatically; pre-sizing only avoids rehashes.
    """

    __slots__ = ("_keys", "_counts", "_used", "_size", "_mask")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        cap = _next_pow2(max(int(capacity), _MIN_CAPACITY))
        self._alloc(cap)

    def _alloc(self, cap: int) -> None:
        self._keys = np.zeros(cap, dtype=np.uint64)
        self._counts = np.zeros(cap, dtype=np.uint32)
        self._used = np.zeros(cap, dtype=bool)
        self._size = 0
        self._mask = np.uint64(cap - 1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current number of slots."""
        return self._keys.shape[0]

    @property
    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._size / self.capacity

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing arrays (the rank memory-footprint unit)."""
        return self._keys.nbytes + self._counts.nbytes + self._used.nbytes

    def __contains__(self, key: int) -> bool:
        return self._find_slot(int(key)) is not None

    def _find_slot(self, key: int) -> int | None:
        """Slot index of ``key`` or None; scalar path for __contains__/get."""
        mask = int(self._mask)
        slot = int(splitmix64(np.uint64(key))) & mask
        for _ in range(self.capacity):
            if not self._used[slot]:
                return None
            if int(self._keys[slot]) == int(key):
                return slot
            slot = (slot + 1) & mask
        return None

    def get(self, key: int, default: int = 0) -> int:
        """Count stored for ``key`` (``default`` when absent)."""
        slot = self._find_slot(int(key))
        if slot is None:
            return default
        return int(self._counts[slot])

    # ------------------------------------------------------------------
    # batch mutation
    # ------------------------------------------------------------------
    def add_counts(self, keys: np.ndarray, counts: np.ndarray | int = 1) -> None:
        """Add ``counts`` to each key (inserting absent keys).

        ``keys`` may contain duplicates; duplicate contributions are summed
        first so each unique key is probed once.  ``counts`` may be a scalar
        applied to every occurrence.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        if np.isscalar(counts) or np.asarray(counts).ndim == 0:
            uniq, inv_counts = np.unique(keys, return_counts=True)
            add = inv_counts.astype(np.uint64) * np.uint64(int(counts))
        else:
            counts = np.ascontiguousarray(counts, dtype=np.uint64)
            if counts.shape != keys.shape:
                raise HashTableError(
                    f"counts shape {counts.shape} != keys shape {keys.shape}"
                )
            uniq, inverse = np.unique(keys, return_inverse=True)
            add = np.zeros(uniq.shape[0], dtype=np.uint64)
            np.add.at(add, inverse, counts)
        self._reserve(self._size + uniq.shape[0])
        slots = self._locate_for_insert(uniq)
        # Saturating add into uint32 counts.
        total = self._counts[slots].astype(np.uint64) + add
        np.minimum(total, np.uint64(np.iinfo(np.uint32).max), out=total)
        self._counts[slots] = total.astype(np.uint32)

    def increment(self, keys: np.ndarray) -> None:
        """Shorthand for ``add_counts(keys, 1)``."""
        self.add_counts(keys, 1)

    def _reserve(self, projected_size: int) -> None:
        needed = int(projected_size / _MAX_LOAD) + 1
        if needed > self.capacity:
            self._grow(_next_pow2(needed))

    def _grow(self, new_cap: int) -> None:
        old_keys = self._keys[self._used]
        old_counts = self._counts[self._used]
        self._alloc(new_cap)
        if old_keys.size:
            slots = self._locate_for_insert(old_keys)
            self._counts[slots] = old_counts

    def _locate_for_insert(self, uniq: np.ndarray) -> np.ndarray:
        """Slot for each unique key, claiming free slots for new keys.

        Distinct new keys racing for the same free slot are arbitrated per
        probing round: the first claims it, the rest advance.
        """
        n = uniq.shape[0]
        result = np.empty(n, dtype=np.int64)
        slots = (splitmix64(uniq) & self._mask).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        mask = int(self._mask)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise HashTableError("probe loop exceeded capacity (table full)")
            s = slots[pending]
            occ = self._used[s]
            matched = np.zeros(pending.shape[0], dtype=bool)
            occ_idx = np.nonzero(occ)[0]
            if occ_idx.size:
                matched[occ_idx] = self._keys[s[occ_idx]] == uniq[pending[occ_idx]]
            resolved = matched.copy()
            result[pending[matched]] = s[matched]
            free_idx = np.nonzero(~occ)[0]
            if free_idx.size:
                fslots = s[free_idx]
                _, first = np.unique(fslots, return_index=True)
                winners = free_idx[first]
                wslots = s[winners]
                self._used[wslots] = True
                self._keys[wslots] = uniq[pending[winners]]
                self._counts[wslots] = 0
                self._size += winners.shape[0]
                result[pending[winners]] = wslots
                resolved[winners] = True
            rem = ~resolved
            slots[pending[rem]] = (s[rem] + 1) & mask
            pending = pending[rem]
        return result

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Counts for each key (0 for absent keys); duplicates allowed.

        This is the operation the error-correction phase performs millions of
        times — locally for owned keys, over the wire otherwise.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape[0], dtype=np.uint32)
        if keys.size == 0 or self._size == 0:
            return out
        slots = (splitmix64(keys) & self._mask).astype(np.int64)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        mask = int(self._mask)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise HashTableError("lookup probe loop exceeded capacity")
            s = slots[pending]
            occ = self._used[s]
            matched = np.zeros(pending.shape[0], dtype=bool)
            occ_idx = np.nonzero(occ)[0]
            if occ_idx.size:
                matched[occ_idx] = self._keys[s[occ_idx]] == keys[pending[occ_idx]]
            out[pending[matched]] = self._counts[s[matched]]
            # Absent: hit a free slot -> resolved with count 0.
            resolved = matched | ~occ
            rem = ~resolved
            slots[pending[rem]] = (s[rem] + 1) & mask
            pending = pending[rem]
        return out

    def lookup_found(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(counts, found)`` for each key in a single probe sequence.

        Unlike :meth:`lookup`, distinguishes an explicit zero entry (count 0,
        found True) from an absent key (count 0, found False) — the
        distinction the prefetch cache relies on to tell "known globally
        absent" apart from "never fetched".
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape[0], dtype=np.uint32)
        found = np.zeros(keys.shape[0], dtype=bool)
        if keys.size == 0 or self._size == 0:
            return out, found
        slots = (splitmix64(keys) & self._mask).astype(np.int64)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        mask = int(self._mask)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise HashTableError("lookup probe loop exceeded capacity")
            s = slots[pending]
            occ = self._used[s]
            matched = np.zeros(pending.shape[0], dtype=bool)
            occ_idx = np.nonzero(occ)[0]
            if occ_idx.size:
                matched[occ_idx] = self._keys[s[occ_idx]] == keys[pending[occ_idx]]
            hit = pending[matched]
            out[hit] = self._counts[s[matched]]
            found[hit] = True
            resolved = matched | ~occ
            rem = ~resolved
            slots[pending[rem]] = (s[rem] + 1) & mask
            pending = pending[rem]
        return out, found

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership per key (count may legitimately be 0 only for
        keys never inserted, so membership equals lookup > 0 except for keys
        inserted with zero count — which :meth:`add_counts` never produces)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape[0], dtype=bool)
        if keys.size == 0 or self._size == 0:
            return out
        slots = (splitmix64(keys) & self._mask).astype(np.int64)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        mask = int(self._mask)
        while pending.size:
            s = slots[pending]
            occ = self._used[s]
            matched = np.zeros(pending.shape[0], dtype=bool)
            occ_idx = np.nonzero(occ)[0]
            if occ_idx.size:
                matched[occ_idx] = self._keys[s[occ_idx]] == keys[pending[occ_idx]]
            out[pending[matched]] = True
            resolved = matched | ~occ
            rem = ~resolved
            slots[pending[rem]] = (s[rem] + 1) & mask
            pending = pending[rem]
        return out

    # ------------------------------------------------------------------
    # bulk access / maintenance
    # ------------------------------------------------------------------
    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of all (keys, counts), in unspecified order."""
        used = self._used
        return self._keys[used].copy(), self._counts[used].copy()

    def filter_below(self, threshold: int) -> int:
        """Drop every entry with count < ``threshold``; returns #removed.

        This is the paper's spectrum thresholding step ("k-mers and tiles
        below a threshold are subsequently removed").  The table is rebuilt
        compactly, shrinking the footprint.
        """
        keys, counts = self.items()
        keep = counts >= np.uint32(threshold)
        removed = int((~keep).sum())
        if removed == 0:
            return 0
        kept_keys, kept_counts = keys[keep], counts[keep]
        self._alloc(_next_pow2(max(_MIN_CAPACITY, int(kept_keys.size / _MAX_LOAD) + 1)))
        if kept_keys.size:
            slots = self._locate_for_insert(kept_keys)
            self._counts[slots] = kept_counts
        return removed

    def clear(self) -> None:
        """Remove all entries, shrinking back to the minimum capacity."""
        self._alloc(_MIN_CAPACITY)

    def merge_from(self, other: "CountHash") -> None:
        """Add every (key, count) of ``other`` into this table."""
        keys, counts = other.items()
        self.add_counts(keys, counts.astype(np.uint64))

    def copy(self) -> "CountHash":
        """Deep copy preserving layout."""
        dup = CountHash.__new__(CountHash)
        dup._keys = self._keys.copy()
        dup._counts = self._counts.copy()
        dup._used = self._used.copy()
        dup._size = self._size
        dup._mask = self._mask
        return dup
