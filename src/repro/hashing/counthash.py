"""Open-addressing count hash table over uint64 keys.

This is the paper's spectrum container: "we store the k-mer and tile spectrum
in hash tables instead of arrays; this prevents any need for sorting the
arrays or for repeated binary searches."  The table is numpy-backed — a
single ``(capacity, 2)`` uint64 record array holding ``[key, meta]`` per
slot, where ``meta`` packs an occupancy bit (bit 63) above the uint32 count —
so batch inserts and lookups are vectorized across whole reads or whole
incoming messages, and the memory footprint is exactly measurable
(:attr:`CountHash.nbytes`), which the paper's per-rank memory figures rely
on.  The record layout means one probing round costs a single 16-byte row
gather per key instead of three scattered reads (key, count, occupancy in
separate arrays) — the correction phase is lookup-bound, and those gathers
are its cache-miss budget.

Probing is linear with a splitmix64-mixed home slot.  Batch operations
resolve collisions round-by-round on the shrinking unresolved subset — the
first round runs unindexed over the full batch (nearly every probe resolves
immediately at sane load factors), later rounds touch only survivors — so
cost is O(rounds) numpy passes rather than O(n) Python iterations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashTableError
from repro.hashing.inthash import splitmix64

_MIN_CAPACITY = 64
_MAX_LOAD = 0.60

#: Bit 63 of ``meta``: slot occupied.  The count lives in the low 32 bits.
_PRESENT = np.uint64(1) << np.uint64(63)
_COUNT_MASK = np.uint64(0xFFFFFFFF)
_COUNT_MAX = np.uint64(np.iinfo(np.uint32).max)


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class CountHash:
    """Mutable uint64 → uint32 count map with vectorized batch operations.

    Parameters
    ----------
    capacity:
        Initial number of slots (rounded up to a power of two).  The table
        grows automatically; pre-sizing only avoids rehashes.
    """

    __slots__ = ("_table", "_size", "_mask")

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        cap = _next_pow2(max(int(capacity), _MIN_CAPACITY))
        self._alloc(cap)

    def _alloc(self, cap: int) -> None:
        self._table = np.zeros((cap, 2), dtype=np.uint64)
        self._size = 0
        self._mask = np.uint64(cap - 1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current number of slots."""
        return self._table.shape[0]

    @property
    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._size / self.capacity

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing array (the rank memory-footprint unit)."""
        return self._table.nbytes

    def __contains__(self, key: int) -> bool:
        return self._find_slot(int(key)) is not None

    def _find_slot(self, key: int) -> int | None:
        """Slot index of ``key`` or None; scalar path for __contains__/get."""
        mask = int(self._mask)
        slot = int(splitmix64(np.uint64(key))) & mask
        for _ in range(self.capacity):
            k, meta = self._table[slot]
            if not int(meta) >> 63:
                return None
            if int(k) == int(key):
                return slot
            slot = (slot + 1) & mask
        return None

    def get(self, key: int, default: int = 0) -> int:
        """Count stored for ``key`` (``default`` when absent)."""
        slot = self._find_slot(int(key))
        if slot is None:
            return default
        return int(self._table[slot, 1] & _COUNT_MASK)

    # ------------------------------------------------------------------
    # batch mutation
    # ------------------------------------------------------------------
    def add_counts(self, keys: np.ndarray, counts: np.ndarray | int = 1) -> None:
        """Add ``counts`` to each key (inserting absent keys).

        ``keys`` may contain duplicates; duplicate contributions are summed
        first so each unique key is probed once.  ``counts`` may be a scalar
        applied to every occurrence.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        if np.isscalar(counts) or np.asarray(counts).ndim == 0:
            uniq, inv_counts = np.unique(keys, return_counts=True)
            add = inv_counts.astype(np.uint64) * np.uint64(int(counts))
        else:
            counts = np.ascontiguousarray(counts, dtype=np.uint64)
            if counts.shape != keys.shape:
                raise HashTableError(
                    f"counts shape {counts.shape} != keys shape {keys.shape}"
                )
            uniq, inverse = np.unique(keys, return_inverse=True)
            add = np.zeros(uniq.shape[0], dtype=np.uint64)
            np.add.at(add, inverse, counts)
        self._reserve(self._size + uniq.shape[0])
        slots = self._locate_for_insert(uniq)
        # Saturating add into the 32-bit count field.
        total = (self._table[slots, 1] & _COUNT_MASK) + add
        np.minimum(total, _COUNT_MAX, out=total)
        self._table[slots, 1] = _PRESENT | total

    def increment(self, keys: np.ndarray) -> None:
        """Shorthand for ``add_counts(keys, 1)``."""
        self.add_counts(keys, 1)

    def _reserve(self, projected_size: int) -> None:
        needed = int(projected_size / _MAX_LOAD) + 1
        if needed > self.capacity:
            self._grow(_next_pow2(needed))

    def _grow(self, new_cap: int) -> None:
        old_keys, old_counts = self.items()
        self._alloc(new_cap)
        if old_keys.size:
            slots = self._locate_for_insert(old_keys)
            self._table[slots, 1] = _PRESENT | old_counts.astype(np.uint64)

    def _locate_for_insert(self, uniq: np.ndarray) -> np.ndarray:
        """Slot for each unique key, claiming free slots for new keys.

        Distinct new keys racing for the same free slot are arbitrated per
        probing round: the first claims it, the rest advance.
        """
        n = uniq.shape[0]
        result = np.empty(n, dtype=np.int64)
        slots = (splitmix64(uniq) & self._mask).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        mask = int(self._mask)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise HashTableError("probe loop exceeded capacity (table full)")
            s = slots[pending]
            rec = self._table[s]
            occ = rec[:, 1] >= _PRESENT
            matched = occ & (rec[:, 0] == uniq[pending])
            resolved = matched.copy()
            result[pending[matched]] = s[matched]
            free_idx = np.nonzero(~occ)[0]
            if free_idx.size:
                fslots = s[free_idx]
                _, first = np.unique(fslots, return_index=True)
                winners = free_idx[first]
                wslots = s[winners]
                self._table[wslots, 0] = uniq[pending[winners]]
                self._table[wslots, 1] = _PRESENT
                self._size += winners.shape[0]
                result[pending[winners]] = wslots
                resolved[winners] = True
            rem = ~resolved
            slots[pending[rem]] = (s[rem] + 1) & mask
            pending = pending[rem]
        return result

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    def _probe(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared probe core: ``(counts, found)`` per key.

        Round 1 runs unindexed over the whole batch — one row gather plus
        elementwise compares; subsequent rounds narrow to the unresolved
        remainder.
        """
        flat = self._table.reshape(-1)
        slots = (splitmix64(keys) & self._mask).astype(np.int64)
        idx = slots << 1
        k = flat.take(idx, mode="clip")
        meta = flat.take(idx + 1, mode="clip")
        occ = meta >= _PRESENT
        matched = occ & (k == keys)
        # Round 1 covers the whole batch unindexed: nearly every probe
        # lands here, so it's full-array passes, no fancy writes.  The
        # uint32 truncation of meta is the count; multiplying by the
        # match mask zeroes misses in one pass.
        found = matched
        out = meta.astype(np.uint32)
        out *= matched
        # matched is a subset of occ, so xor is the unresolved remainder.
        pending = np.flatnonzero(occ ^ matched)
        mask = int(self._mask)
        rounds = 1
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise HashTableError("lookup probe loop exceeded capacity")
            s = (slots[pending] + 1) & mask
            slots[pending] = s
            idx = s << 1
            meta = flat.take(idx + 1, mode="clip")
            occ = meta >= _PRESENT
            matched = occ & (flat.take(idx, mode="clip") == keys[pending])
            hit = pending[matched]
            out[hit] = meta[matched].astype(np.uint32)
            found[hit] = True
            pending = pending[occ ^ matched]
        return out, found

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Counts for each key (0 for absent keys); duplicates allowed.

        This is the operation the error-correction phase performs millions of
        times — locally for owned keys, over the wire otherwise.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0 or self._size == 0:
            return np.zeros(keys.shape[0], dtype=np.uint32)
        return self._probe(keys)[0]

    def lookup_found(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(counts, found)`` for each key in a single probe sequence.

        Unlike :meth:`lookup`, distinguishes an explicit zero entry (count 0,
        found True) from an absent key (count 0, found False) — the
        distinction the prefetch cache relies on to tell "known globally
        absent" apart from "never fetched".
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0 or self._size == 0:
            return (
                np.zeros(keys.shape[0], dtype=np.uint32),
                np.zeros(keys.shape[0], dtype=bool),
            )
        return self._probe(keys)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership per key (count may legitimately be 0 only for
        keys never inserted, so membership equals lookup > 0 except for keys
        inserted with zero count — which :meth:`add_counts` never produces)."""
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0 or self._size == 0:
            return np.zeros(keys.shape[0], dtype=bool)
        return self._probe(keys)[1]

    # ------------------------------------------------------------------
    # bulk access / maintenance
    # ------------------------------------------------------------------
    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of all (keys, counts), in unspecified order."""
        used = self._table[:, 1] >= _PRESENT
        return (
            self._table[used, 0].copy(),
            (self._table[used, 1] & _COUNT_MASK).astype(np.uint32),
        )

    def filter_below(self, threshold: int) -> int:
        """Drop every entry with count < ``threshold``; returns #removed.

        This is the paper's spectrum thresholding step ("k-mers and tiles
        below a threshold are subsequently removed").  The table is rebuilt
        compactly, shrinking the footprint.
        """
        keys, counts = self.items()
        keep = counts >= np.uint32(threshold)
        removed = int((~keep).sum())
        if removed == 0:
            return 0
        kept_keys, kept_counts = keys[keep], counts[keep]
        self._alloc(_next_pow2(max(_MIN_CAPACITY, int(kept_keys.size / _MAX_LOAD) + 1)))
        if kept_keys.size:
            slots = self._locate_for_insert(kept_keys)
            self._table[slots, 1] = _PRESENT | kept_counts.astype(np.uint64)
        return removed

    def clear(self) -> None:
        """Remove all entries, shrinking back to the minimum capacity."""
        self._alloc(_MIN_CAPACITY)

    def merge_from(self, other: "CountHash") -> None:
        """Add every (key, count) of ``other`` into this table."""
        keys, counts = other.items()
        self.add_counts(keys, counts.astype(np.uint64))

    def copy(self) -> "CountHash":
        """Deep copy preserving layout."""
        dup = CountHash.__new__(CountHash)
        dup._table = self._table.copy()
        dup._size = self._size
        dup._mask = self._mask
        return dup
