"""Hashing substrate: integer mixers, count hash tables, Bloom filters.

The paper replaces the prior work's sorted-array spectra (binary-search
lookups) with hash tables; :class:`CountHash` is that structure — an
open-addressing table over uint64 keys with uint32 counts, fully
numpy-backed so batch inserts/lookups run vectorized.  The same mixer that
buckets keys inside the table also defines *ownership*
(``mix(key) % nranks``), the paper's rank-assignment rule for k-mers, tiles
and sequences.
"""

from repro.hashing.inthash import splitmix64, mix_to_rank
from repro.hashing.counthash import CountHash
from repro.hashing.bloom import BloomFilter
from repro.hashing.sortedspectrum import SortedSpectrum, EytzingerSpectrum

__all__ = [
    "splitmix64",
    "mix_to_rank",
    "CountHash",
    "BloomFilter",
    "SortedSpectrum",
    "EytzingerSpectrum",
]
