"""Integer hash mixers.

K-mer and tile ids are highly structured (low entropy in low bits for
repetitive genomes), so both table bucketing and rank ownership pass ids
through a finalizing mixer first.  We use the splitmix64 finalizer — the same
construction used by ``std::hash``-quality implementations — vectorized over
uint64 arrays.
"""

from __future__ import annotations

import numpy as np

_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_ADD = np.uint64(0x9E3779B97F4A7C15)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)


def splitmix64(x: int | np.ndarray) -> np.ndarray | int:
    """splitmix64 finalizer; accepts a scalar or a uint64 array.

    Bijective on uint64, so distinct ids never collide at this stage; all
    collisions come from the subsequent modulo, which the mixer randomizes.
    """
    if np.isscalar(x) or np.asarray(x).ndim == 0:
        # Wrap-around multiplication is the point; silence numpy's
        # scalar overflow warning (the array path never warns, so it
        # skips the errstate context entirely).
        with np.errstate(over="ignore"):
            z = np.asarray(x, dtype=np.uint64) + _ADD
            z = (z ^ (z >> _S30)) * _C1
            z = (z ^ (z >> _S27)) * _C2
            return int(z ^ (z >> _S31))
    z = np.asarray(x, dtype=np.uint64) + _ADD
    z = (z ^ (z >> _S30)) * _C1
    z = (z ^ (z >> _S27)) * _C2
    return z ^ (z >> _S31)


def mix_to_rank(keys: int | np.ndarray, nranks: int) -> np.ndarray | int:
    """Owning rank of each key: ``hashFunction(key) % nranks``.

    This single function defines ownership for k-mers, tiles *and* sequences
    (the load-balancing redistribution), exactly as in the paper.
    """
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    mixed = splitmix64(keys)
    if np.isscalar(mixed):
        return int(mixed % nranks)
    return (mixed % np.uint64(nranks)).astype(np.int64)
