"""Finding renderers: text, JSON, and SARIF 2.1.0.

The text form is the classic ``path:line:col: CODE message`` stream the
CLI has always printed.  JSON is the machine-readable form CI archives
as a workflow artifact.  SARIF 2.1.0 is the interchange format code
hosts ingest for inline annotations; the emitted log carries the full
rule catalog (id, short/full description, default severity) in
``tool.driver.rules`` and one ``result`` per finding, and is validated
against the SARIF schema in the test suite.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.analysis.rules import Finding, all_rules, get_rule

#: Emitted SARIF version and its schema URI.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def severity_of(code: str) -> str:
    rule = get_rule(code)
    return rule.severity if rule is not None else "warning"


def render_text(findings: Sequence[Finding],
                files: Sequence[str]) -> str:
    lines = [f.render() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s) in {len(files)} file(s)")
    else:
        lines.append(f"no findings in {len(files)} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                files: Sequence[str]) -> str:
    doc: dict[str, Any] = {
        "version": 1,
        "files": list(files),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "severity": severity_of(f.code),
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _sarif_rules() -> list[dict[str, Any]]:
    return [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.doc},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity],
            },
        }
        for rule in all_rules()
    ]


def render_sarif(findings: Sequence[Finding],
                 files: Sequence[str]) -> str:
    rule_index = {rule.code: i for i, rule in enumerate(all_rules())}
    results: list[dict[str, Any]] = []
    for f in findings:
        result: dict[str, Any] = {
            "ruleId": f.code,
            "level": _SARIF_LEVELS[severity_of(f.code)],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    },
                }
            ],
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        results.append(result)
    log: dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _sarif_rules(),
                    },
                },
                "artifacts": [
                    {"location": {"uri": path}} for path in files
                ],
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


#: Supported ``--format`` values and their renderers.
FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
