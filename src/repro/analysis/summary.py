"""Phase-1 extraction: per-module communication summaries.

The whole-program linter runs in two phases.  This module implements
the first: each source file is parsed once and distilled into a
:class:`ModuleSummary` — its constant environment (module- and
class-level integer constants, so ``Tags.KMER_REQUEST`` folds to an
int whenever ``message.py`` is in the lint set), every send / receive /
collective call on a communicator-like receiver with its resolved tag,
and every *tag consumer* (a constant-tag receive, a ``msg.tag ==
Tags.X`` dispatch comparison, or a ``handlers[Tags.X] = fn``
registration).  Phase 2 rules then see either one summary
(``module_check``) or the :class:`Program` holding all of them
(``program_check``), which is what lets a send in ``server.py`` be
matched against its responder in ``prefetch.py``.

Communicator detection is name-based: a receiver expression whose final
component is ``comm`` or ends in ``comm`` (``comm``, ``subcomm``,
``self.comm``, ``group_comm``, ...), or a name assigned from a
``.split(...)`` call on such an expression, is treated as a
communicator.  This matches the repository's and the paper's idiom
without needing type inference.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Methods that are collective: every rank of the communicator must call
#: them, in the same order.
COLLECTIVE_METHODS = frozenset(
    {"barrier", "alltoallv", "allgather", "allreduce", "gather", "bcast",
     "reduce", "split"}
)
SEND_METHODS = frozenset({"send", "isend"})
RECV_METHODS = frozenset({"recv", "irecv", "iprobe"})

#: ndarray methods that mutate in place (MPI005, MPI011).
INPLACE_METHODS = frozenset(
    {"fill", "sort", "put", "partition", "resize", "setfield", "byteswap",
     "itemset", "setflags"}
)

#: Container methods that mutate the receiver in place (MPI011).
CONTAINER_MUTATORS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "remove", "discard", "clear", "appendleft", "extendleft"}
)

#: Constructor names whose result has no typed wire encoding (MPI006).
NON_CODABLE_CALLS = frozenset({"dict", "set", "frozenset"})

#: Sentinel tag value for ``ANY_TAG`` / ``-1``.
WILDCARD = "<ANY_TAG>"

#: Resolved tag: int constant, symbolic name / WILDCARD, or None when
#: the expression could not be folded.
Tag = int | str | None


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_comm_name(dotted: str, extra: set[str]) -> bool:
    last = dotted.rsplit(".", 1)[-1]
    return dotted in extra or last in extra or last.lower().endswith("comm")


def walk_no_nested_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def call_arg(call: ast.Call, index: int, keyword: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


def resolve_tag(node: ast.expr | None, env: dict[str, int],
                default: Tag) -> Tag:
    """Constant-fold a tag expression.

    Returns an int, a symbolic dotted constant name
    (``Tags.KMER_REQUEST``), :data:`WILDCARD` for ``ANY_TAG``/-1, or
    None when unresolvable.
    """
    if node is None:
        return default
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and node.operand.value == 1:
        return WILDCARD
    dotted = dotted_name(node)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last == "ANY_TAG":
        return WILDCARD
    if dotted in env:
        return env[dotted]
    if last.isupper():
        # A symbolic module constant we could not fold (e.g. an imported
        # Tags.* attribute): match send/recv sides textually.
        return dotted
    return None


def tag_symbol(node: ast.expr | None) -> str | None:
    """The last component of a symbolic tag expression, if any.

    ``Tags.KMER_REQUEST`` and ``message.Tags.KMER_REQUEST`` both yield
    ``KMER_REQUEST``.  Kept alongside the folded value so name-based
    protocol rules (MPI008) survive constant folding.
    """
    if node is None:
        return None
    dotted = dotted_name(node)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    return last if last.isupper() and last != "ANY_TAG" else None


def constant_env(body: Sequence[ast.stmt],
                 base: dict[str, int] | None = None) -> dict[str, int]:
    """Integer constants bound by simple assignments in ``body``."""
    env = dict(base or {})
    for stmt in body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and \
                    isinstance(stmt.value, ast.Constant) and \
                    isinstance(stmt.value.value, int):
                env[target.id] = stmt.value.value
            elif isinstance(target, ast.Tuple) and \
                    isinstance(stmt.value, ast.Tuple):
                for t, v in zip(target.elts, stmt.value.elts):
                    if isinstance(t, ast.Name) and \
                            isinstance(v, ast.Constant) and \
                            isinstance(v.value, int):
                        env[t.id] = v.value
    return env


def module_env(tree: ast.Module) -> dict[str, int]:
    """Module constants, plus class-level constants as ``Cls.NAME``.

    Recording class bodies is what lets the tag registry itself
    (``class Tags`` in :mod:`repro.simmpi.message`) fold every
    ``Tags.X`` reference to its integer the moment that file is part of
    the lint set.
    """
    env = constant_env(tree.body)
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for name, value in constant_env(stmt.body).items():
            env[f"{stmt.name}.{name}"] = value
    return env


# ----------------------------------------------------------------------
# summary records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommOp:
    """One send/recv/collective call on a communicator-like receiver."""

    path: str
    method: str
    node: ast.Call
    tag: Tag
    #: Uppercase last component of a symbolic tag expression
    #: (``KMER_REQUEST``), kept even when the value folded to an int.
    symbol: str | None
    #: True when the call sits under an ``if`` testing ``<comm>.rank``.
    rank_guarded: bool

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def col(self) -> int:
        return self.node.col_offset


@dataclass(frozen=True)
class TagConsumer:
    """A site that demultiplexes on a specific tag value.

    Three shapes count: a constant-tag receive, a dispatch comparison
    (``msg.tag == Tags.X`` or ``msg.tag in (Tags.X, ...)``), and a
    handler-table registration (``protocol.handlers[Tags.X] = fn``).
    """

    path: str
    line: int
    tag: Tag
    symbol: str | None
    kind: str  # "recv" | "compare" | "handler"


@dataclass
class FunctionSummary:
    """One function's communication facts (phase-1 unit of extraction)."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    env: dict[str, int]
    comm_names: set[str]
    calls: list[CommOp] = field(default_factory=list)

    @property
    def sends(self) -> list[CommOp]:
        return [c for c in self.calls if c.method in SEND_METHODS]

    @property
    def recvs(self) -> list[CommOp]:
        return [c for c in self.calls if c.method in RECV_METHODS]

    @property
    def collectives(self) -> list[CommOp]:
        return [c for c in self.calls if c.method in COLLECTIVE_METHODS]


@dataclass
class ModuleSummary:
    """Everything phase 2 knows about one source file."""

    path: str
    tree: ast.Module
    env: dict[str, int]
    functions: list[FunctionSummary] = field(default_factory=list)
    consumers: list[TagConsumer] = field(default_factory=list)

    @property
    def sends(self) -> list[CommOp]:
        return [c for f in self.functions for c in f.sends]

    @property
    def recvs(self) -> list[CommOp]:
        return [c for f in self.functions for c in f.recvs]


@dataclass
class Program:
    """The whole lint set: every module summary plus the merged
    constant environment used to normalize tags across modules."""

    modules: list[ModuleSummary] = field(default_factory=list)
    env: dict[str, int] = field(default_factory=dict)

    @property
    def sends(self) -> list[CommOp]:
        return [c for m in self.modules for c in m.sends]

    @property
    def recvs(self) -> list[CommOp]:
        return [c for m in self.modules for c in m.recvs]

    @property
    def consumers(self) -> list[TagConsumer]:
        return [c for m in self.modules for c in m.consumers]

    def normalize(self, op_tag: Tag, symbol: str | None) -> Tag:
        """One canonical value per protocol tag, program-wide.

        Ints stay ints.  A symbolic tag folds to its int when the
        merged environment defines it (exactly, or unambiguously by its
        last component); otherwise it normalizes to the bare constant
        name so ``Tags.X`` in one module matches ``message.Tags.X`` in
        another.
        """
        if isinstance(op_tag, int) or op_tag == WILDCARD or op_tag is None:
            return op_tag
        if op_tag in self.env:
            return self.env[op_tag]
        last = op_tag.rsplit(".", 1)[-1]
        values = {
            v for k, v in self.env.items()
            if k == last or k.endswith("." + last)
        }
        if len(values) == 1:
            return values.pop()
        return symbol if symbol is not None else last


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def _comm_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound to communicator-like objects inside ``fn``."""
    names: set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        ann = a.annotation
        ann_name = dotted_name(ann) if ann is not None else None
        if a.arg.lower().endswith("comm") or (
                ann_name is not None and "Communicator" in ann_name):
            names.add(a.arg)
    # Names assigned from <comm>.split(...).
    for node in walk_no_nested_functions(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Call) and \
                isinstance(node.value.func, ast.Attribute) and \
                node.value.func.attr == "split":
            recv = dotted_name(node.value.func.value)
            if recv is not None and is_comm_name(recv, names):
                names.add(node.targets[0].id)
    return names


def mentions_rank(test: ast.expr, comm_names: set[str]) -> bool:
    """True when ``test`` reads ``<comm>.rank``."""
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            recv = dotted_name(node.value)
            if recv is not None and is_comm_name(recv, comm_names):
                return True
    return False


def _classify_call(node: ast.Call, path: str, comm_names: set[str],
                   env: dict[str, int], rank_guarded: bool) -> CommOp | None:
    if not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method not in SEND_METHODS | RECV_METHODS | COLLECTIVE_METHODS:
        return None
    recv = dotted_name(node.func.value)
    if recv is None or not is_comm_name(recv, comm_names):
        return None
    tag_expr: ast.expr | None
    tag: Tag
    if method in SEND_METHODS:
        tag_expr = call_arg(node, 2, "tag")
        tag = resolve_tag(tag_expr, env, default=0)
    elif method in RECV_METHODS:
        tag_expr = call_arg(node, 1, "tag")
        tag = resolve_tag(tag_expr, env, default=WILDCARD)
    else:
        tag_expr = None
        tag = None
    return CommOp(path=path, method=method, node=node, tag=tag,
                  symbol=tag_symbol(tag_expr), rank_guarded=rank_guarded)


def _extract_calls(fn_summary: FunctionSummary, path: str) -> None:
    """Fill ``fn_summary.calls``, tracking rank-guard nesting."""

    comm_names = fn_summary.comm_names
    env = fn_summary.env

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not fn_summary.node:
            return
        if isinstance(node, ast.Call):
            op = _classify_call(node, path, comm_names, env, guarded)
            if op is not None:
                fn_summary.calls.append(op)
        if isinstance(node, ast.If) and mentions_rank(node.test, comm_names):
            for child in ast.iter_child_nodes(node):
                visit(child, child is not node.test or guarded)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(fn_summary.node, False)
    fn_summary.calls.sort(key=lambda c: (c.line, c.col))


def _tag_comparison_values(node: ast.Compare,
                           env: dict[str, int]) -> list[ast.expr]:
    """Tag-constant expressions compared against a tag expression.

    The tag side is either a ``.tag`` attribute (``msg.tag == Tags.X``)
    or a tag-named variable (``tag = msg.tag; if tag == Tags.X``), the
    repo's dispatch idioms.
    """

    def is_tag_attr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute) and expr.attr == "tag":
            return True
        return isinstance(expr, ast.Name) and \
            expr.id.lower().endswith("tag")

    out: list[ast.expr] = []
    sides = [node.left, *node.comparators]
    for i, op in enumerate(node.ops):
        left, right = sides[i], sides[i + 1]
        if isinstance(op, (ast.Eq, ast.In)):
            if is_tag_attr(left):
                if isinstance(right, (ast.Tuple, ast.List, ast.Set)):
                    out.extend(right.elts)
                else:
                    out.append(right)
            elif is_tag_attr(right):
                out.append(left)
    return out


def _extract_consumers(summary: ModuleSummary,
                       fn_env: dict[str, int] | None = None) -> None:
    """Record every tag-demultiplexing site in the module."""
    env = dict(summary.env)
    if fn_env:
        env.update(fn_env)
    for node in ast.walk(summary.tree):
        if isinstance(node, ast.Compare):
            for expr in _tag_comparison_values(node, env):
                tag = resolve_tag(expr, env, default=None)
                sym = tag_symbol(expr)
                if tag is not None or sym is not None:
                    summary.consumers.append(TagConsumer(
                        path=summary.path, line=node.lineno, tag=tag,
                        symbol=sym, kind="compare",
                    ))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not (isinstance(target, ast.Subscript) and
                        isinstance(target.value, (ast.Attribute, ast.Name))):
                    continue
                recv = dotted_name(target.value)
                if recv is None or not recv.rsplit(".", 1)[-1].lower() \
                        .endswith("handlers"):
                    continue
                tag = resolve_tag(target.slice, env, default=None)
                sym = tag_symbol(target.slice)
                if tag is not None or sym is not None:
                    summary.consumers.append(TagConsumer(
                        path=summary.path, line=node.lineno, tag=tag,
                        symbol=sym, kind="handler",
                    ))
    for f in summary.functions:
        for op in f.recvs:
            if op.tag != WILDCARD and (op.tag is not None or
                                       op.symbol is not None):
                summary.consumers.append(TagConsumer(
                    path=summary.path, line=op.line, tag=op.tag,
                    symbol=op.symbol, kind="recv",
                ))


def summarize_module(tree: ast.Module, path: str) -> ModuleSummary:
    """Phase 1 for one parsed module."""
    summary = ModuleSummary(path=path, tree=tree, env=module_env(tree))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionSummary(
                node=node,
                env=constant_env(node.body, base=summary.env),
                comm_names=_comm_names(node),
            )
            _extract_calls(fn, path)
            summary.functions.append(fn)
    _extract_consumers(summary)
    return summary


def build_program(summaries: Iterable[ModuleSummary]) -> Program:
    """Merge module summaries into the whole-program view."""
    program = Program(modules=list(summaries))
    for module in program.modules:
        program.env.update(module.env)
    return program
