"""Correctness tooling for simmpi SPMD programs.

Two halves, mirroring how message-passing bugs are found in practice:

* the **whole-program lint** (``repro lint <paths>``) — a two-phase
  static analysis: phase 1 distills every source file into a
  communication summary (:mod:`repro.analysis.summary`), phase 2 runs
  the registered rules (:mod:`repro.analysis.rules`) over each module
  and over the merged program, so tag protocols that span files are
  matched end to end.  Rules live in
  :mod:`repro.analysis.modulerules` (per-module patterns),
  :mod:`repro.analysis.protocol` (cross-module tag ledgers and
  request/response pairing), and :mod:`repro.analysis.races`
  (shared-state mutation from rank closures); renderers — text, JSON,
  SARIF 2.1.0 — in :mod:`repro.analysis.output`; the driver, noqa
  suppression, and baseline handling in
  :mod:`repro.analysis.runner`.

* :mod:`repro.analysis.verifier` — opt-in runtime instrumentation
  (``run_spmd(..., verify=True)``) that maintains a wait-for graph
  across ranks and raises a diagnostic
  :class:`~repro.errors.DeadlockError` the moment a cycle forms,
  instead of after the threaded engine's 120 s timeout, plus a
  finalize-time audit of undrained mailboxes, unmatched sends, and
  collective generation skew.
"""

from repro.analysis.rules import RULES, Finding, Rule, all_rules, get_rule
from repro.analysis.runner import LintResult, lint_paths, lint_source
from repro.analysis.verifier import RuntimeVerifier

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "RuntimeVerifier",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
]
