"""Correctness tooling for simmpi SPMD programs.

Two halves, mirroring how message-passing bugs are found in practice:

* :mod:`repro.analysis.lint` — a static AST pass over SPMD program
  sources (``repro lint <paths>``) that flags the classic MPI bug
  patterns before a program ever runs: rank-divergent collective
  ordering, tag mismatches, orphaned sends, blocking receives inside
  probe loops, and send-buffer reuse.

* :mod:`repro.analysis.verifier` — opt-in runtime instrumentation
  (``run_spmd(..., verify=True)``) that maintains a wait-for graph
  across ranks and raises a diagnostic
  :class:`~repro.errors.DeadlockError` the moment a cycle forms,
  instead of after the threaded engine's 120 s timeout, plus a
  finalize-time audit of undrained mailboxes, unmatched sends, and
  collective generation skew.
"""

from repro.analysis.lint import (
    Finding,
    LintResult,
    RULES,
    lint_paths,
    lint_source,
)
from repro.analysis.verifier import RuntimeVerifier

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "lint_paths",
    "lint_source",
    "RuntimeVerifier",
]
