"""Module-phase rules: checks that need only one file's summary.

MPI001 and MPI009 police collective ordering under rank conditionals,
MPI004/MPI005 the service-loop and buffer-reuse hazards, MPI006 the
wire-codec contract, MPI007 the lookup-tier layering, MPI010
request-object hygiene, and MPI012 the session-backend layering (the
service tier and other non-parallel code may touch spectrum state only
through the :class:`~repro.parallel.backend.SessionBackend` verbs).
Each rule is a plain function registered with the framework in
:mod:`repro.analysis.rules`; none of them may mutate the summary it is
given.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.analysis.rules import Finding, Rule, register
from repro.analysis.summary import (
    COLLECTIVE_METHODS,
    INPLACE_METHODS,
    NON_CODABLE_CALLS,
    SEND_METHODS,
    FunctionSummary,
    ModuleSummary,
    call_arg,
    dotted_name,
    is_comm_name,
    mentions_rank,
    walk_no_nested_functions,
)

#: Receiver attributes that name a spectrum count table (MPI007).  The
#: rule matches ``<expr>.<one of these>.lookup(...)`` — a probe against
#: a raw table — but deliberately not ``shards.lookup``, which is the
#: stack's own serving surface.
SPECTRUM_TABLE_ATTRS = frozenset(
    {"kmers", "tiles", "owned", "owned_kmers", "owned_tiles",
     "reads_kmers", "reads_tiles", "group_kmers", "group_tiles",
     "table", "spectra"}
)

#: Table-probe method names (MPI007).
TABLE_PROBE_METHODS = frozenset({"lookup", "lookup_found"})

#: MPI007 only polices these paths...
_LOOKUP_POLICED_PART = "repro/parallel"
#: ...and exempts the package that is allowed to probe tables.
_LOOKUP_EXEMPT_PART = "repro/parallel/lookup"


def _finding(path: str, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# MPI001 — rank-divergent collectives
# ----------------------------------------------------------------------
def _collectives_in(stmts: Sequence[ast.stmt],
                    comm_names: set[str]) -> list[ast.Call]:
    out: list[ast.Call] = []
    for stmt in stmts:
        for node in walk_no_nested_functions(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in COLLECTIVE_METHODS:
                recv = dotted_name(node.func.value)
                if recv is not None and is_comm_name(recv, comm_names):
                    out.append(node)
    return out


def _rank_conditionals(
        fn: FunctionSummary) -> list[tuple[ast.If, list[ast.Call],
                                           list[ast.Call]]]:
    out: list[tuple[ast.If, list[ast.Call], list[ast.Call]]] = []
    for node in walk_no_nested_functions(fn.node):
        if isinstance(node, ast.If) and \
                mentions_rank(node.test, fn.comm_names):
            out.append((
                node,
                _collectives_in(node.body, fn.comm_names),
                _collectives_in(node.orelse, fn.comm_names),
            ))
    return out


def check_rank_divergent_collectives(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    for fn in summary.functions:
        for cond, body_calls, else_calls in _rank_conditionals(fn):
            body_count = Counter(c.func.attr for c in body_calls
                                 if isinstance(c.func, ast.Attribute))
            else_count = Counter(c.func.attr for c in else_calls
                                 if isinstance(c.func, ast.Attribute))
            for method in sorted(set(body_count) | set(else_count)):
                if body_count[method] == else_count[method]:
                    continue
                heavier = body_calls if body_count[method] > \
                    else_count[method] else else_calls
                site = next(c for c in heavier
                            if isinstance(c.func, ast.Attribute) and
                            c.func.attr == method)
                findings.append(_finding(
                    summary.path, site, "MPI001",
                    f"collective '{method}' is reachable on only one side "
                    f"of a rank-conditional branch (line {cond.lineno}); "
                    "every rank must call collectives in the same order",
                ))
    return findings


register(Rule(
    code="MPI001",
    name="rank-divergent-collective",
    severity="error",
    summary="collective reachable on only one side of a rank-conditional",
    doc=(
        "A collective (barrier, allreduce, alltoallv, ...) appears in the "
        "body or else of an `if` that tests `<comm>.rank`, with no "
        "matching call on the other side.  Ranks taking different "
        "branches then disagree on the collective schedule and the "
        "program deadlocks.  Fix by hoisting the collective out of the "
        "conditional or mirroring it on both sides."
    ),
    module_check=check_rank_divergent_collectives,
))


# ----------------------------------------------------------------------
# MPI009 — collective-sequence divergence (same multiset, different order)
# ----------------------------------------------------------------------
def check_collective_sequence(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    for fn in summary.functions:
        for cond, body_calls, else_calls in _rank_conditionals(fn):
            body_seq = [c.func.attr for c in body_calls
                        if isinstance(c.func, ast.Attribute)]
            else_seq = [c.func.attr for c in else_calls
                        if isinstance(c.func, ast.Attribute)]
            if not body_seq or not else_seq or body_seq == else_seq:
                continue
            if Counter(body_seq) != Counter(else_seq):
                continue  # unequal multisets are MPI001's finding
            findings.append(_finding(
                summary.path, body_calls[0], "MPI009",
                f"rank-conditional branches (line {cond.lineno}) call the "
                f"same collectives in different orders "
                f"({' -> '.join(body_seq)} vs {' -> '.join(else_seq)}); "
                "ranks taking different branches deadlock against each "
                "other's collective schedule",
            ))
    return findings


register(Rule(
    code="MPI009",
    name="collective-sequence-divergence",
    severity="error",
    summary="rank branches call the same collectives in different orders",
    doc=(
        "Both sides of a rank-conditional call the same multiset of "
        "collectives — so MPI001 is silent — but in a different order "
        "(e.g. `reduce` then `barrier` on rank 0, `barrier` then "
        "`reduce` elsewhere).  Collectives match by call order per "
        "communicator, so the ranks cross-match different operations "
        "and deadlock.  Reorder one branch or hoist the shared calls "
        "out of the conditional."
    ),
    module_check=check_collective_sequence,
))


# ----------------------------------------------------------------------
# MPI004 — blocking recv in an iprobe service loop
# ----------------------------------------------------------------------
def _recv_uses_probed_envelope(call: ast.Call) -> bool:
    """True for ``recv(p.source, p.tag)``-style calls."""
    source = call_arg(call, 0, "source")
    tag = call_arg(call, 1, "tag")
    if source is None or tag is None:
        return False
    return (
        isinstance(source, ast.Attribute) and source.attr == "source"
        and isinstance(tag, ast.Attribute) and tag.attr == "tag"
    )


def check_recv_in_probe_loop(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    for fn in summary.functions:
        comm_names = fn.comm_names
        for loop in walk_no_nested_functions(fn.node):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            has_probe = any(
                isinstance(n, ast.Call) and
                isinstance(n.func, ast.Attribute) and
                n.func.attr == "iprobe" and
                is_comm_name(dotted_name(n.func.value) or "", comm_names)
                for n in walk_no_nested_functions(loop)
            )
            if not has_probe:
                continue
            for node in walk_no_nested_functions(loop):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute) and
                        node.func.attr == "recv"):
                    continue
                recv = dotted_name(node.func.value)
                if recv is None or not is_comm_name(recv, comm_names):
                    continue
                if _recv_uses_probed_envelope(node):
                    continue
                findings.append(_finding(
                    summary.path, node, "MPI004",
                    "blocking recv inside an iprobe service loop; receive "
                    "by the probed envelope (msg.source, msg.tag) or the "
                    "loop can block with traffic still unserved",
                ))
    return findings


register(Rule(
    code="MPI004",
    name="recv-in-probe-loop",
    severity="warning",
    summary="blocking recv inside an iprobe service loop",
    doc=(
        "A loop polls with `iprobe` but then receives with a blocking "
        "`recv()` that is not addressed by the probed envelope.  The "
        "recv can match a different message than the probe saw — or "
        "block forever when the probed message was the last one.  "
        "Receive with `comm.recv(probed.source, probed.tag)`."
    ),
    module_check=check_recv_in_probe_loop,
))


# ----------------------------------------------------------------------
# MPI005 — payload mutated between isend and request completion
# ----------------------------------------------------------------------
def check_mutation_after_isend(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    for fn in summary.functions:
        findings.extend(_mutation_after_isend(summary.path, fn))
    return findings


@dataclass
class _BufferEvent:
    """One line-ordered event in a function's isend/mutation history."""

    line: int
    kind: str  # "isend" | "wait" | "waitall" | "rebind" | "mutate"
    name: str | None = None
    node: ast.AST | None = None


@dataclass
class _Hazard:
    """An in-flight isend whose payload buffer must stay untouched."""

    name: str
    start: int
    req: str | None
    done: bool = False


def _mutation_after_isend(path: str, fn: FunctionSummary) -> list[Finding]:
    comm_names = fn.comm_names
    findings: list[Finding] = []
    hazards: list[_Hazard] = []
    events: list[_BufferEvent] = []

    for node in walk_no_nested_functions(fn.node):
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute):
            if node.func.attr == "isend":
                recv = dotted_name(node.func.value)
                if recv is not None and is_comm_name(recv, comm_names):
                    payload = call_arg(node, 1, "payload")
                    if isinstance(payload, ast.Name):
                        events.append(_BufferEvent(
                            line, "isend", name=payload.id, node=node))
            elif node.func.attr == "wait" and \
                    isinstance(node.func.value, ast.Name):
                events.append(_BufferEvent(
                    line, "wait", name=node.func.value.id))
            elif node.func.attr in INPLACE_METHODS and \
                    isinstance(node.func.value, ast.Name):
                events.append(_BufferEvent(
                    line, "mutate", name=node.func.value.id, node=node))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "waitall":
            events.append(_BufferEvent(line, "waitall"))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    events.append(_BufferEvent(
                        line, "mutate", name=target.value.id, node=node))
                elif isinstance(target, ast.Name):
                    events.append(_BufferEvent(
                        line, "rebind", name=target.id))
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name):
                events.append(_BufferEvent(
                    line, "mutate", name=target.id, node=node))
            elif isinstance(target, ast.Subscript) and \
                    isinstance(target.value, ast.Name):
                events.append(_BufferEvent(
                    line, "mutate", name=target.value.id, node=node))

    events.sort(key=lambda e: e.line)
    # Requests assigned from isend calls: req = comm.isend(...)
    req_of_isend: dict[int, str] = {}
    for node in walk_no_nested_functions(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Call) and \
                isinstance(node.value.func, ast.Attribute) and \
                node.value.func.attr == "isend":
            req_of_isend[id(node.value)] = node.targets[0].id

    for event in events:
        if event.kind == "isend" and event.name is not None:
            hazards.append(_Hazard(
                name=event.name, start=event.line,
                req=req_of_isend.get(id(event.node)),
            ))
        elif event.kind == "wait":
            for h in hazards:
                if h.req == event.name and event.line > h.start:
                    h.done = True
        elif event.kind == "waitall":
            for h in hazards:
                if event.line > h.start:
                    h.done = True
        elif event.kind == "rebind":
            for h in hazards:
                if h.name == event.name and event.line > h.start:
                    h.done = True
        elif event.kind == "mutate" and event.node is not None:
            for h in hazards:
                if h.name == event.name and not h.done and \
                        event.line > h.start:
                    findings.append(_finding(
                        path, event.node, "MPI005",
                        f"'{event.name}' is mutated after isend on line "
                        f"{h.start} before the request completes; "
                        "under real MPI the send buffer must not be "
                        "touched until the request is waited on",
                    ))
    return findings


register(Rule(
    code="MPI005",
    name="mutation-after-isend",
    severity="error",
    summary="payload mutated after isend (buffer-reuse hazard)",
    doc=(
        "A name passed as an `isend` payload is mutated (subscript "
        "store, augmented assignment, in-place ndarray method) before "
        "the request is completed by `wait`/`waitall` or the name is "
        "rebound.  The simulated runtime deep-copies at the send "
        "boundary so this works here, but under real MPI the send "
        "buffer must stay untouched until completion."
    ),
    module_check=check_mutation_after_isend,
))


# ----------------------------------------------------------------------
# MPI006 — payload has no typed wire encoding
# ----------------------------------------------------------------------
def _non_codable_kind(expr: ast.expr) -> str | None:
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in NON_CODABLE_CALLS:
        return f"a {expr.func.id}() value"
    return None


def check_non_codable_payload(summary: ModuleSummary) -> list[Finding]:
    """Flag send payload expressions with no typed wire encoding.

    The codec keeps such payloads sendable through its pickle fallback,
    so this is a style-and-portability rule, not a correctness one.
    Only syntactically certain cases are reported (literals,
    comprehensions, and bare ``dict()``/``set()``/``frozenset()``
    constructors) — a name whose runtime type is unknown is never
    guessed at.
    """
    findings: list[Finding] = []
    for fn in summary.functions:
        for op in fn.calls:
            if op.method not in SEND_METHODS:
                continue
            payload = call_arg(op.node, 1, "payload")
            if payload is None:
                continue
            kind = _non_codable_kind(payload)
            if kind is not None:
                findings.append(_finding(
                    summary.path, payload, "MPI006",
                    f"{op.method} payload is {kind}, which has no typed "
                    "wire encoding and travels as a pickle-fallback "
                    "frame; send arrays, scalars, bytes/str, or "
                    "tuples/lists of them instead",
                ))
    return findings


register(Rule(
    code="MPI006",
    name="non-codable-payload",
    severity="warning",
    summary="send payload is not wire-codable (pickle-fallback frame)",
    doc=(
        "A send/isend payload is a dict/set literal, a comprehension, "
        "or a bare `dict()`/`set()`/`frozenset()` call.  The wire codec "
        "has no typed encoding for these and falls back to a pickle "
        "frame — legal and exactly accounted, but a production MPI "
        "port would have to design a real encoding.  Send arrays, "
        "scalars, bytes/str, or tuples/lists of them."
    ),
    module_check=check_non_codable_payload,
))


# ----------------------------------------------------------------------
# MPI007 — direct spectrum-table probe outside the lookup package
# ----------------------------------------------------------------------
def _polices_lookups(path: str) -> bool:
    """MPI007 scope: repro/parallel minus the lookup package."""
    posix = Path(path).as_posix()
    return (
        _LOOKUP_POLICED_PART in posix
        and _LOOKUP_EXEMPT_PART not in posix
    )


def check_direct_spectrum_lookup(summary: ModuleSummary) -> list[Finding]:
    """Flag raw count-table probes outside the lookup package.

    After the tier-stack refactor every count resolution in
    :mod:`repro.parallel` flows through a compiled
    :class:`~repro.parallel.lookup.stack.LookupStack` (or the
    :class:`~repro.parallel.lookup.routing.ShardServer` on the serving
    side).  A ``<table>.lookup(...)`` anywhere else is a layering
    regression: it answers from one table instead of the configured
    resolution order, silently skipping replicas, the reads table,
    caching and the per-tier ledger.  Sites that legitimately answer
    from a table they own (e.g. the Step III exchange serving its
    partial counts) carry ``# noqa: MPI007``.
    """
    if not _polices_lookups(summary.path):
        return []
    findings: list[Finding] = []
    for node in ast.walk(summary.tree):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute) and
                node.func.attr in TABLE_PROBE_METHODS):
            continue
        recv = dotted_name(node.func.value)
        if recv is None:
            continue
        last = recv.rsplit(".", 1)[-1]
        if last not in SPECTRUM_TABLE_ATTRS and not last.endswith("_table"):
            continue
        findings.append(_finding(
            summary.path, node, "MPI007",
            f"direct spectrum-table probe '{recv}.{node.func.attr}' "
            "bypasses the compiled lookup tier stack; resolve counts "
            "through repro.parallel.lookup (LookupStack / ShardServer) "
            "or mark a table-serving site with '# noqa: MPI007'",
        ))
    return findings


register(Rule(
    code="MPI007",
    name="direct-spectrum-lookup",
    severity="warning",
    summary="direct spectrum-table lookup bypasses the tier stack",
    doc=(
        "Code in repro.parallel (outside repro.parallel.lookup) probes "
        "a count table directly with `.lookup`/`.lookup_found` instead "
        "of resolving through the compiled lookup tier stack.  Direct "
        "probes skip replicas, the reads table, caching, and the "
        "per-tier ledger.  Serving sites that answer for a table they "
        "own suppress with `# noqa: MPI007`."
    ),
    module_check=check_direct_spectrum_lookup,
))


# ----------------------------------------------------------------------
# MPI012 — spectrum state touched outside the SessionBackend verbs
# ----------------------------------------------------------------------
#: Spectrum-construction internals only the parallel layer may call
#: (MPI012): the machinery the SessionBackend verbs are built from.
BACKEND_INTERNAL_CALLS = frozenset(
    {"build_rank_spectra", "accumulate_block", "exchange_deltas",
     "apply_replication", "fetch_read_table", "compile_stacks",
     "replicate_state"}
)

#: Backend-owned types that outside code must not construct directly.
BACKEND_INTERNAL_TYPES = frozenset({"RankSpectra", "CorrectionProtocol"})

#: Raw per-rank session state only the checkpoint verb may serialize.
BACKEND_INTERNAL_ATTRS = frozenset({"raw_kmers", "raw_tiles"})

#: MPI012 always polices the service tier...
_BACKEND_SERVICE_PART = "repro/service"
#: ...and every other repro package except the layers that *implement*
#: the backend (the parallel runtime, the core pipeline it wraps, and
#: the hashing primitives both are built on).
_BACKEND_EXEMPT_PARTS = ("repro/parallel", "repro/core", "repro/hashing")


def _polices_backend_verbs(path: str) -> bool:
    """MPI012 scope: repro.service, plus repro minus the backend layers."""
    posix = Path(path).as_posix()
    if _BACKEND_SERVICE_PART in posix:
        return True
    return (
        "repro/" in posix
        and not any(part in posix for part in _BACKEND_EXEMPT_PARTS)
    )


def check_backend_verb_bypass(summary: ModuleSummary) -> list[Finding]:
    """Flag spectrum-state access that bypasses the SessionBackend verbs.

    The service front-end (and everything else above the parallel
    layer) holds exactly one handle on spectrum state: a
    :class:`~repro.parallel.backend.SessionBackend` and its four verbs
    — ``ingest``/``correct``/``finalize``/``checkpoint``.  Calling the
    construction machinery (``build_rank_spectra``,
    ``exchange_deltas``, ...), probing a count table, constructing
    :class:`RankSpectra`/:class:`CorrectionProtocol` directly, or
    reading the raw checkpoint arrays from outside skips the verbs'
    collectives, accounting and recompilation tracking — precisely the
    layering the service refactor exists to enforce.
    """
    if not _polices_backend_verbs(summary.path):
        return []
    findings: list[Finding] = []
    for node in ast.walk(summary.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name in BACKEND_INTERNAL_CALLS:
                findings.append(_finding(
                    summary.path, node, "MPI012",
                    f"spectrum-construction call '{name}(...)' outside "
                    "the parallel layer; reach spectrum state only "
                    "through the SessionBackend verbs "
                    "(ingest/correct/finalize/checkpoint)",
                ))
            elif name in BACKEND_INTERNAL_TYPES:
                findings.append(_finding(
                    summary.path, node, "MPI012",
                    f"direct {name}(...) construction outside the "
                    "parallel layer; the backend owns its spectra and "
                    "protocol — hold a SessionBackend and use its verbs",
                ))
            elif name in TABLE_PROBE_METHODS and \
                    isinstance(func, ast.Attribute):
                recv = dotted_name(func.value)
                if recv is None:
                    continue
                last = recv.rsplit(".", 1)[-1]
                if last in SPECTRUM_TABLE_ATTRS or last.endswith("_table"):
                    findings.append(_finding(
                        summary.path, node, "MPI012",
                        f"spectrum-table probe '{recv}.{name}' outside "
                        "the parallel layer; counts are backend state — "
                        "submit reads through SessionBackend.correct() "
                        "instead of probing tables",
                    ))
        elif isinstance(node, ast.Attribute) and \
                node.attr in BACKEND_INTERNAL_ATTRS:
            findings.append(_finding(
                summary.path, node, "MPI012",
                f"raw session state '.{node.attr}' read outside the "
                "parallel layer; persistence goes through "
                "SessionBackend.checkpoint(), not the raw arrays",
            ))
    return findings


register(Rule(
    code="MPI012",
    name="backend-verb-bypass",
    severity="error",
    summary="spectrum state touched outside the SessionBackend verbs",
    doc=(
        "Code in repro.service — or any repro package other than the "
        "backend layers (repro.parallel, repro.core, repro.hashing) — "
        "touches spectrum state directly: it calls the construction "
        "machinery (`build_rank_spectra`, `exchange_deltas`, "
        "`accumulate_block`, ...), probes a count table with "
        "`.lookup`/`.lookup_found`, constructs `RankSpectra` or "
        "`CorrectionProtocol` itself, or reads the raw checkpoint "
        "arrays (`.raw_kmers`/`.raw_tiles`).  The service tier's one "
        "handle on spectrum state is a SessionBackend and its verbs "
        "(ingest/correct/finalize/checkpoint); anything else skips the "
        "verbs' collectives, accounting and recompile tracking.  A "
        "deliberate exception suppresses with `# noqa: MPI012` and a "
        "justification."
    ),
    module_check=check_backend_verb_bypass,
))


# ----------------------------------------------------------------------
# MPI010 — isend request discarded or never completed
# ----------------------------------------------------------------------
def check_leaked_isend(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    for fn in summary.functions:
        findings.extend(_leaked_isends(summary.path, fn))
    return findings


def _leaked_isends(path: str, fn: FunctionSummary) -> list[Finding]:
    comm_names = fn.comm_names

    def is_comm_isend(call: ast.Call) -> bool:
        if not (isinstance(call.func, ast.Attribute) and
                call.func.attr == "isend"):
            return False
        recv = dotted_name(call.func.value)
        return recv is not None and is_comm_name(recv, comm_names)

    findings: list[Finding] = []
    assigned: list[tuple[str, ast.Call, int]] = []  # (req name, call, line)
    for node in walk_no_nested_functions(fn.node):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call) \
                and is_comm_isend(node.value):
            findings.append(_finding(
                path, node.value, "MPI010",
                "isend request is discarded; keep the request and "
                "complete it with wait()/waitall() (or a collective "
                "fence) so the send is known to have finished",
            ))
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Call) and \
                is_comm_isend(node.value):
            assigned.append(
                (node.targets[0].id, node.value, node.lineno))
    for req_name, call, line in assigned:
        used = any(
            isinstance(node, ast.Name) and node.id == req_name and
            isinstance(node.ctx, ast.Load) and
            getattr(node, "lineno", 0) >= line
            for node in walk_no_nested_functions(fn.node)
        )
        if not used:
            findings.append(_finding(
                path, call, "MPI010",
                f"isend request '{req_name}' is never used after "
                "assignment; complete it with wait()/waitall() or the "
                "send's fate is unknown",
            ))
    return findings


register(Rule(
    code="MPI010",
    name="leaked-isend-request",
    severity="warning",
    summary="isend request discarded or never awaited",
    doc=(
        "An `isend` call's request object is thrown away (bare "
        "expression statement) or bound to a name that is never read "
        "again.  Nothing ever completes the request, so the program "
        "cannot know the send finished — under real MPI the buffer and "
        "request leak.  Keep the request and `wait()` it (or collect "
        "requests and `waitall`).  Fire-and-forget sites where the "
        "runtime's eager buffering makes completion immediate suppress "
        "with `# noqa: MPI010` and a justification."
    ),
    module_check=check_leaked_isend,
))
