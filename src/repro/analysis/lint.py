"""Static MPI-correctness lint for simmpi SPMD programs.

An AST pass over program sources — anything passed to the engines, plus
the :mod:`repro.parallel` modules — that flags the classic
message-passing bug patterns before a program ever runs:

======== ==============================================================
code     pattern
======== ==============================================================
MPI000   file could not be parsed
MPI001   collective call reachable on only one side of a
         rank-conditional branch (rank-divergent collective ordering)
MPI002   receive uses a constant tag that no send in the module uses
MPI003   orphaned send: constant send tag never received anywhere in
         the module
MPI004   blocking ``recv`` inside an ``iprobe`` service loop that does
         not receive by the probed envelope
MPI005   payload name mutated after ``isend`` before the request is
         completed (buffer-reuse hazard under real MPI semantics)
MPI006   ``send``/``isend`` payload expression has no typed wire
         encoding (dict/set literals, comprehensions, ``dict()`` and
         friends) and would travel as a pickle-fallback frame
MPI007   direct spectrum-table probe (``.lookup``/``.lookup_found`` on
         a count table) in :mod:`repro.parallel` outside the
         :mod:`repro.parallel.lookup` package — count resolution must
         go through the compiled tier stack (serving sites that answer
         for a table they own suppress with ``# noqa: MPI007``)
======== ==============================================================

The pass is deliberately conservative: a tag it cannot resolve to a
constant disables the module-level matching rules (MPI002/MPI003)
rather than guessing, and a receive with ``ANY_TAG`` satisfies every
send.  Each rule is individually suppressible with a trailing
``# noqa: MPIxxx`` comment or the ``--disable`` CLI flag.

Communicator detection is name-based: a receiver expression whose final
component is ``comm`` or ends in ``comm`` (``comm``, ``subcomm``,
``self.comm``, ``group_comm``, ...), or a name assigned from a
``.split(...)`` call on such an expression, is treated as a
communicator.  This matches the repository's and the paper's idiom
without needing type inference.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: Rule codes and their one-line descriptions (see module docstring).
RULES: dict[str, str] = {
    "MPI000": "file could not be parsed",
    "MPI001": "collective reachable on only one side of a rank-conditional",
    "MPI002": "receive tag is never sent in this module",
    "MPI003": "orphaned send: tag is never received in this module",
    "MPI004": "blocking recv inside an iprobe service loop",
    "MPI005": "payload mutated after isend (buffer-reuse hazard)",
    "MPI006": "send payload is not wire-codable (pickle-fallback frame)",
    "MPI007": "direct spectrum-table lookup bypasses the tier stack",
}

#: Constructor names whose result has no typed wire encoding (MPI006).
NON_CODABLE_CALLS = frozenset({"dict", "set", "frozenset"})

#: Receiver attributes that name a spectrum count table (MPI007).  The
#: rule matches ``<expr>.<one of these>.lookup(...)`` — a probe against
#: a raw table — but deliberately not ``shards.lookup``, which is the
#: stack's own serving surface.
SPECTRUM_TABLE_ATTRS = frozenset(
    {"kmers", "tiles", "owned", "owned_kmers", "owned_tiles",
     "reads_kmers", "reads_tiles", "group_kmers", "group_tiles",
     "table", "spectra"}
)

#: Table-probe method names (MPI007).
TABLE_PROBE_METHODS = frozenset({"lookup", "lookup_found"})

#: MPI007 only polices these paths...
_LOOKUP_POLICED_PART = "repro/parallel"
#: ...and exempts the package that is allowed to probe tables.
_LOOKUP_EXEMPT_PART = "repro/parallel/lookup"

#: Methods that are collective: every rank of the communicator must call
#: them, in the same order.
COLLECTIVE_METHODS = frozenset(
    {"barrier", "alltoallv", "allgather", "allreduce", "gather", "bcast",
     "reduce", "split"}
)
SEND_METHODS = frozenset({"send", "isend"})
RECV_METHODS = frozenset({"recv", "irecv", "iprobe"})

#: ndarray methods that mutate in place (for MPI005).
INPLACE_METHODS = frozenset(
    {"fill", "sort", "put", "partition", "resize", "setfield", "byteswap",
     "itemset", "setflags"}
)

#: Sentinel tag values used by the resolver.
WILDCARD = "<ANY_TAG>"

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One lint diagnosis, reported as ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_comm_name(dotted: str, extra: set[str]) -> bool:
    last = dotted.rsplit(".", 1)[-1]
    return dotted in extra or last in extra or last.lower().endswith("comm")


def _walk_no_nested_functions(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a subtree without descending into nested function bodies."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _call_arg(call: ast.Call, index: int, keyword: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > index:
        return call.args[index]
    return None


@dataclass(frozen=True)
class _CommCall:
    """One send/recv/collective call on a communicator-like receiver."""

    method: str
    node: ast.Call
    tag: object  # int | str (symbolic) | WILDCARD | None (unresolvable)


def _resolve_tag(node: ast.expr | None, env: dict[str, int],
                 default: object) -> object:
    """Constant-fold a tag expression.

    Returns an int, a symbolic dotted constant name (``Tags.KMER_REQUEST``),
    :data:`WILDCARD` for ``ANY_TAG``/-1, or None when unresolvable.
    """
    if node is None:
        return default
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and node.operand.value == 1:
        return WILDCARD
    dotted = _dotted(node)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last == "ANY_TAG":
        return WILDCARD
    if dotted in env:
        return env[dotted]
    if last.isupper():
        # A symbolic module constant we could not fold (e.g. an imported
        # Tags.* attribute): match send/recv sides textually.
        return dotted
    return None


# ----------------------------------------------------------------------
# per-module analysis
# ----------------------------------------------------------------------
class _ModuleLinter:
    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        self.findings: list[Finding] = []
        self.env = self._constant_env(tree.body)
        # Module-wide tag ledgers for MPI002/MPI003.
        self.sends: list[_CommCall] = []
        self.recvs: list[_CommCall] = []

    # -- constant environment ------------------------------------------
    @staticmethod
    def _constant_env(body: Sequence[ast.stmt],
                      base: dict[str, int] | None = None) -> dict[str, int]:
        env = dict(base or {})
        for stmt in body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and \
                        isinstance(stmt.value, ast.Constant) and \
                        isinstance(stmt.value.value, int):
                    env[target.id] = stmt.value.value
                elif isinstance(target, ast.Tuple) and \
                        isinstance(stmt.value, ast.Tuple):
                    for t, v in zip(target.elts, stmt.value.elts):
                        if isinstance(t, ast.Name) and \
                                isinstance(v, ast.Constant) and \
                                isinstance(v.value, int):
                            env[t.id] = v.value
        return env

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    # -- driver ---------------------------------------------------------
    def run(self) -> list[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._lint_function(node)
        self._lint_tag_ledger()
        self._rule_direct_spectrum_lookup()
        return self.findings

    # -- function-scope rules ------------------------------------------
    def _lint_function(self, fn: ast.FunctionDef) -> None:
        env = self._constant_env(fn.body, base=self.env)
        comm_names = self._comm_names(fn)
        calls = self._comm_calls(fn, comm_names, env)
        for call in calls:
            if call.method in SEND_METHODS:
                self.sends.append(call)
            elif call.method in RECV_METHODS:
                self.recvs.append(call)
        self._rule_rank_divergent_collectives(fn, comm_names)
        self._rule_recv_in_probe_loop(fn, comm_names)
        self._rule_mutation_after_isend(fn, comm_names)
        self._rule_non_codable_payload(calls)

    def _comm_names(self, fn: ast.FunctionDef) -> set[str]:
        """Names bound to communicator-like objects inside ``fn``."""
        names: set[str] = set()
        args = fn.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = a.annotation
            ann_name = _dotted(ann) if ann is not None else None
            if a.arg.lower().endswith("comm") or (
                    ann_name and "Communicator" in ann_name):
                names.add(a.arg)
        # Names assigned from <comm>.split(...).
        for node in _walk_no_nested_functions(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Attribute) and \
                    node.value.func.attr == "split":
                recv = _dotted(node.value.func.value)
                if recv is not None and _is_comm_name(recv, names):
                    names.add(node.targets[0].id)
        return names

    def _comm_calls(self, root: ast.AST, comm_names: set[str],
                    env: dict[str, int]) -> list[_CommCall]:
        calls: list[_CommCall] = []
        for node in _walk_no_nested_functions(root):
            call = self._classify_call(node, comm_names, env)
            if call is not None:
                calls.append(call)
        return calls

    def _classify_call(self, node: ast.AST, comm_names: set[str],
                       env: dict[str, int]) -> _CommCall | None:
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute)):
            return None
        method = node.func.attr
        if method not in SEND_METHODS | RECV_METHODS | COLLECTIVE_METHODS:
            return None
        recv = _dotted(node.func.value)
        if recv is None or not _is_comm_name(recv, comm_names):
            return None
        if method in SEND_METHODS:
            tag = _resolve_tag(_call_arg(node, 2, "tag"), env, default=0)
        elif method in RECV_METHODS:
            tag = _resolve_tag(_call_arg(node, 1, "tag"), env,
                               default=WILDCARD)
        else:
            tag = None
        return _CommCall(method=method, node=node, tag=tag)

    # MPI001 ------------------------------------------------------------
    def _rule_rank_divergent_collectives(self, fn: ast.FunctionDef,
                                         comm_names: set[str]) -> None:
        for node in _walk_no_nested_functions(fn):
            if not isinstance(node, ast.If):
                continue
            if not self._mentions_rank(node.test, comm_names):
                continue
            body_calls = self._collectives_in(node.body, comm_names)
            else_calls = self._collectives_in(node.orelse, comm_names)
            body_count = Counter(c.func.attr for c in body_calls)
            else_count = Counter(c.func.attr for c in else_calls)
            for method in sorted(set(body_count) | set(else_count)):
                if body_count[method] == else_count[method]:
                    continue
                heavier = body_calls if body_count[method] > \
                    else_count[method] else else_calls
                site = next(c for c in heavier if c.func.attr == method)
                self.report(
                    site, "MPI001",
                    f"collective '{method}' is reachable on only one side "
                    f"of a rank-conditional branch (line {node.lineno}); "
                    "every rank must call collectives in the same order",
                )

    def _mentions_rank(self, test: ast.expr, comm_names: set[str]) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "rank":
                recv = _dotted(node.value)
                if recv is not None and _is_comm_name(recv, comm_names):
                    return True
        return False

    def _collectives_in(self, stmts: Sequence[ast.stmt],
                        comm_names: set[str]) -> list[ast.Call]:
        out: list[ast.Call] = []
        for stmt in stmts:
            for node in _walk_no_nested_functions(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in COLLECTIVE_METHODS:
                    recv = _dotted(node.func.value)
                    if recv is not None and _is_comm_name(recv, comm_names):
                        out.append(node)
        return out

    # MPI004 ------------------------------------------------------------
    def _rule_recv_in_probe_loop(self, fn: ast.FunctionDef,
                                 comm_names: set[str]) -> None:
        for loop in _walk_no_nested_functions(fn):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            probes = [
                n for n in _walk_no_nested_functions(loop)
                if isinstance(n, ast.Call) and
                isinstance(n.func, ast.Attribute) and
                n.func.attr == "iprobe" and
                (_dotted(n.func.value) or "") and
                _is_comm_name(_dotted(n.func.value) or "", comm_names)
            ]
            if not probes:
                continue
            for node in _walk_no_nested_functions(loop):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute) and
                        node.func.attr == "recv"):
                    continue
                recv = _dotted(node.func.value)
                if recv is None or not _is_comm_name(recv, comm_names):
                    continue
                if self._recv_uses_probed_envelope(node):
                    continue
                self.report(
                    node, "MPI004",
                    "blocking recv inside an iprobe service loop; receive "
                    "by the probed envelope (msg.source, msg.tag) or the "
                    "loop can block with traffic still unserved",
                )

    @staticmethod
    def _recv_uses_probed_envelope(call: ast.Call) -> bool:
        """True for ``recv(p.source, p.tag)``-style calls."""
        source = _call_arg(call, 0, "source")
        tag = _call_arg(call, 1, "tag")
        if source is None or tag is None:
            return False
        return (
            isinstance(source, ast.Attribute) and source.attr == "source"
            and isinstance(tag, ast.Attribute) and tag.attr == "tag"
        )

    # MPI005 ------------------------------------------------------------
    def _rule_mutation_after_isend(self, fn: ast.FunctionDef,
                                   comm_names: set[str]) -> None:
        hazards: list[dict] = []  # {name, start, req, end}
        events: list[tuple[int, str, object]] = []  # (line, kind, payload)

        for node in _walk_no_nested_functions(fn):
            line = getattr(node, "lineno", 0)
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr == "isend":
                    recv = _dotted(node.func.value)
                    if recv and _is_comm_name(recv, comm_names):
                        payload = _call_arg(node, 1, "payload")
                        if isinstance(payload, ast.Name):
                            events.append((line, "isend",
                                           (payload.id, node)))
                elif node.func.attr == "wait" and \
                        isinstance(node.func.value, ast.Name):
                    events.append((line, "wait", node.func.value.id))
                elif node.func.attr in INPLACE_METHODS and \
                        isinstance(node.func.value, ast.Name):
                    events.append((line, "mutate",
                                   (node.func.value.id, node)))
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "waitall":
                events.append((line, "waitall", None))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and \
                            isinstance(target.value, ast.Name):
                        events.append((line, "mutate",
                                       (target.value.id, node)))
                    elif isinstance(target, ast.Name):
                        events.append((line, "rebind", target.id))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name):
                    events.append((line, "mutate", (target.id, node)))
                elif isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    events.append((line, "mutate", (target.value.id, node)))

        events.sort(key=lambda e: e[0])
        # Requests assigned from isend calls: req = comm.isend(...)
        req_of_isend: dict[int, str] = {}
        for node in _walk_no_nested_functions(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Attribute) and \
                    node.value.func.attr == "isend":
                req_of_isend[id(node.value)] = node.targets[0].id

        for line, kind, payload in events:
            if kind == "isend":
                name, call = payload
                hazards.append({
                    "name": name, "start": line,
                    "req": req_of_isend.get(id(call)), "done": False,
                })
            elif kind == "wait":
                for h in hazards:
                    if h["req"] == payload and line > h["start"]:
                        h["done"] = True
            elif kind == "waitall":
                for h in hazards:
                    if line > h["start"]:
                        h["done"] = True
            elif kind == "rebind":
                for h in hazards:
                    if h["name"] == payload and line > h["start"]:
                        h["done"] = True
            elif kind == "mutate":
                name, node = payload
                for h in hazards:
                    if h["name"] == name and not h["done"] and \
                            line > h["start"]:
                        self.report(
                            node, "MPI005",
                            f"'{name}' is mutated after isend on line "
                            f"{h['start']} before the request completes; "
                            "under real MPI the send buffer must not be "
                            "touched until the request is waited on",
                        )

    # MPI006 ------------------------------------------------------------
    def _rule_non_codable_payload(self, calls: list[_CommCall]) -> None:
        """Flag send payload expressions with no typed wire encoding.

        The codec keeps such payloads sendable through its pickle
        fallback, so this is a style-and-portability rule, not a
        correctness one: a production MPI port would have to design a
        real encoding for each flagged call-site.  Only syntactically
        certain cases are reported (literals, comprehensions, and bare
        ``dict()``/``set()``/``frozenset()`` constructors) — a name
        whose runtime type is unknown is never guessed at.
        """
        for call in calls:
            if call.method not in SEND_METHODS:
                continue
            payload = _call_arg(call.node, 1, "payload")
            if payload is None:
                continue
            kind = self._non_codable_kind(payload)
            if kind is not None:
                self.report(
                    payload, "MPI006",
                    f"{call.method} payload is {kind}, which has no typed "
                    "wire encoding and travels as a pickle-fallback "
                    "frame; send arrays, scalars, bytes/str, or "
                    "tuples/lists of them instead",
                )

    @staticmethod
    def _non_codable_kind(expr: ast.expr) -> str | None:
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "a dict"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator"
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id in NON_CODABLE_CALLS:
            return f"a {expr.func.id}() value"
        return None

    # MPI007 ------------------------------------------------------------
    def _rule_direct_spectrum_lookup(self) -> None:
        """Flag raw count-table probes outside the lookup package.

        After the tier-stack refactor every count resolution in
        :mod:`repro.parallel` flows through a compiled
        :class:`~repro.parallel.lookup.stack.LookupStack` (or the
        :class:`~repro.parallel.lookup.routing.ShardServer` on the
        serving side).  A ``<table>.lookup(...)`` anywhere else is a
        layering regression: it answers from one table instead of the
        configured resolution order, silently skipping replicas, the
        reads table, caching and the per-tier ledger.  Sites that
        legitimately answer from a table they own (e.g. the Step III
        exchange serving its partial counts) carry ``# noqa: MPI007``.
        """
        if not self._polices_lookups(self.path):
            return
        for node in ast.walk(self.tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute) and
                    node.func.attr in TABLE_PROBE_METHODS):
                continue
            recv = _dotted(node.func.value)
            if recv is None:
                continue
            last = recv.rsplit(".", 1)[-1]
            if last not in SPECTRUM_TABLE_ATTRS and \
                    not last.endswith("_table"):
                continue
            self.report(
                node, "MPI007",
                f"direct spectrum-table probe '{recv}.{node.func.attr}' "
                "bypasses the compiled lookup tier stack; resolve counts "
                "through repro.parallel.lookup (LookupStack / ShardServer) "
                "or mark a table-serving site with '# noqa: MPI007'",
            )

    @staticmethod
    def _polices_lookups(path: str) -> bool:
        """MPI007 scope: repro/parallel minus the lookup package."""
        posix = Path(path).as_posix()
        return (
            _LOOKUP_POLICED_PART in posix
            and _LOOKUP_EXEMPT_PART not in posix
        )

    # MPI002 / MPI003 ----------------------------------------------------
    def _lint_tag_ledger(self) -> None:
        send_known = {c.tag for c in self.sends if c.tag is not None}
        recv_known = {c.tag for c in self.recvs
                      if c.tag not in (None, WILDCARD)}
        unknown_send = any(c.tag is None for c in self.sends)
        unknown_recv = any(c.tag is None for c in self.recvs)
        recv_wild = any(c.tag == WILDCARD for c in self.recvs)

        if self.recvs and not recv_wild and not unknown_recv:
            for c in self.sends:
                if c.tag is not None and c.tag not in recv_known:
                    self.report(
                        c.node, "MPI003",
                        f"send with tag {c.tag!r} is never received in "
                        "this module (orphaned send)",
                    )
        if self.sends and not unknown_send:
            for c in self.recvs:
                if c.tag not in (None, WILDCARD) and \
                        c.tag not in send_known:
                    self.report(
                        c.node, "MPI002",
                        f"receive expects tag {c.tag!r} but no send in "
                        "this module uses it",
                    )


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    m = _NOQA_RE.search(lines[finding.line - 1])
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        return True
    wanted = {c.strip().upper() for c in codes.split(",")}
    return finding.code in wanted


def lint_source(source: str, path: str = "<string>",
                disable: Iterable[str] = ()) -> list[Finding]:
    """Lint one module's source text; returns surviving findings."""
    disabled = {c.strip().upper() for c in disable}
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if "MPI000" in disabled:
            return []
        return [Finding(path=path, line=exc.lineno or 1,
                        col=exc.offset or 0, code="MPI000",
                        message=f"could not parse: {exc.msg}")]
    findings = _ModuleLinter(tree, path).run()
    lines = source.splitlines()
    return sorted(
        (f for f in findings
         if f.code not in disabled and not _suppressed(f, lines)),
        key=lambda f: (f.line, f.col, f.code),
    )


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for f in sorted(path.rglob("*.py")):
                seen.setdefault(f, None)
        else:
            seen.setdefault(path, None)
    return list(seen)


def lint_paths(paths: Iterable[str | Path],
               disable: Iterable[str] = ()) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    from repro.errors import ConfigError

    result = LintResult()
    for f in iter_python_files(paths):
        if not f.exists():
            raise ConfigError(f"lint target does not exist: {f}")
        result.files.append(str(f))
        result.findings.extend(
            lint_source(f.read_text(encoding="utf-8"), path=str(f),
                        disable=disable)
        )
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
