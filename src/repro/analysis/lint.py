"""Compatibility facade for the whole-program lint package.

The original single-module linter grew into a package: the rule
framework lives in :mod:`repro.analysis.rules`, phase-1 extraction in
:mod:`repro.analysis.summary`, the rules themselves in
:mod:`repro.analysis.modulerules` / :mod:`repro.analysis.protocol` /
:mod:`repro.analysis.races`, renderers in
:mod:`repro.analysis.output`, and the driver in
:mod:`repro.analysis.runner`.  This module re-exports the public
surface under its historical name so existing imports keep working.
"""

from __future__ import annotations

from repro.analysis.rules import RULES, Finding, Rule, all_rules, get_rule
from repro.analysis.runner import (
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.summary import (
    COLLECTIVE_METHODS,
    INPLACE_METHODS,
    NON_CODABLE_CALLS,
    RECV_METHODS,
    SEND_METHODS,
    WILDCARD,
)

__all__ = [
    "COLLECTIVE_METHODS",
    "Finding",
    "INPLACE_METHODS",
    "LintResult",
    "NON_CODABLE_CALLS",
    "RECV_METHODS",
    "RULES",
    "Rule",
    "SEND_METHODS",
    "WILDCARD",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
