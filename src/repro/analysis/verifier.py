"""Opt-in runtime verification for simmpi SPMD runs.

Enabled with ``run_spmd(..., verify=True)``.  Two mechanisms:

* a **wait-for graph** across ranks, updated at every blocking receive:
  when rank *r* blocks on a specific source *s*, the verifier records
  the edge *r -> s* and immediately checks whether the edge closes a
  cycle (mutual waits) or points at a rank that has already finished
  (and so can never send again).  Either way the run fails *now* with a
  :class:`~repro.errors.DeadlockError` naming the blocked ranks and the
  tags each is waiting on — instead of after the threaded engine's
  120 s receive timeout.  Receives on ``ANY_SOURCE`` add no edge (any
  live rank could satisfy them); those deadlocks are still caught by
  the cooperative engine's nobody-can-run check or the timeout.

* a **finalize-time audit** after a successful run: undrained mailboxes
  (equivalently, sends that were never matched by a receive) and
  collective generation skew across ranks raise a
  :class:`~repro.errors.VerifierError` that names every leftover
  message's source, destination and tag.

All mutating methods are called by the engines while holding
``world.lock``, so the graph is always observed in a consistent state.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import TYPE_CHECKING

from repro.errors import DeadlockError, VerifierError
from repro.simmpi.message import ANY_SOURCE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.communicator import Communicator
    from repro.simmpi.engine import _World


class RuntimeVerifier:
    """Wait-for-graph deadlock detection plus a finalize audit.

    One instance is attached to a world (``world.verifier``); the
    engines call :meth:`begin_wait` / :meth:`end_wait` around every
    blocking receive and :meth:`mark_finished` when a rank's function
    returns.  All such calls happen under ``world.lock``.
    """

    def __init__(self, world: "_World") -> None:
        self._world = world
        #: rank -> {thread ident -> (source, tag)}.  A rank can have
        #: several simultaneous waits in the two-thread Step IV mode
        #: (its communication thread blocks on ANY_SOURCE while the
        #: worker blocks elsewhere).
        self._waits: dict[int, dict[int, tuple[int, int]]] = {
            r: {} for r in range(world.nranks)
        }
        self.finished: set[int] = set()
        self._comms: list[Communicator] = []
        #: (source, dest, tag) -> sends never matched by a receive;
        #: filled by the finalize audit from mailbox leftovers.
        self.unmatched_sends: Counter[tuple[int, int, int]] = Counter()

    # ------------------------------------------------------------------
    # wait-for graph (engine-facing; caller holds world.lock)
    # ------------------------------------------------------------------
    def begin_wait(self, rank: int, source: int,
                   tag: int) -> DeadlockError | None:
        """Record that ``rank`` blocks on ``(source, tag)``; diagnose.

        Returns a :class:`DeadlockError` if the new edge closes a
        wait-for cycle or targets a finished rank, else None.  The
        caller is responsible for raising it and waking other ranks.
        """
        self._waits[rank][threading.get_ident()] = (source, tag)
        if source == ANY_SOURCE:
            return None
        if source in self.finished:
            return self._diagnose([rank, source],
                                  f"rank {source} already finished")
        cycle = self._find_cycle(rank)
        if cycle is not None:
            return self._diagnose(cycle, "wait-for graph closed a cycle",
                                  cycle=cycle)
        return None

    def end_wait(self, rank: int) -> None:
        """The current thread's blocking receive completed."""
        self._waits[rank].pop(threading.get_ident(), None)

    def mark_finished(self, rank: int) -> DeadlockError | None:
        """``rank``'s program function returned; nobody can receive a
        message from it anymore.  Returns a diagnosis if some rank is
        blocked specifically on it with nothing pending."""
        self.finished.add(rank)
        stuck = [
            r for r, waits in self._waits.items()
            if r != rank and any(
                src == rank and self._truly_blocked(r, src, tag)
                for src, tag in waits.values()
            )
        ]
        if stuck:
            return self._diagnose([*stuck, rank],
                                  f"rank {rank} already finished")
        return None

    # -- graph internals ------------------------------------------------
    def _truly_blocked(self, rank: int, source: int, tag: int) -> bool:
        """A wait edge is real only while no matching message is queued
        (a sender may have deposited one the receiver has not woken up
        to collect yet)."""
        return self._world.find_message(rank, source, tag,
                                        remove=False) is None

    def _edges(self, rank: int) -> set[int]:
        return {
            src for src, tag in self._waits[rank].values()
            if src != ANY_SOURCE and self._truly_blocked(rank, src, tag)
        }

    def _find_cycle(self, start: int) -> list[int] | None:
        """DFS over wait edges from ``start``; a path back to ``start``
        is a deadlock cycle (returned in wait order)."""
        path: list[int] = [start]

        def dfs(rank: int) -> list[int] | None:
            for nxt in sorted(self._edges(rank)):
                if nxt == start:
                    return [*path, start]
                if nxt in path:
                    continue  # a cycle not involving start; its own
                    # begin_wait already had the chance to flag it
                path.append(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                path.pop()
            return None

        return dfs(start)

    def _diagnose(self, ranks: list[int], detail: str,
                  cycle: list[int] | None = None) -> DeadlockError:
        blocked: dict[int, tuple[int, int]] = {}
        for r in dict.fromkeys(ranks):
            waits = self._waits.get(r, {})
            if waits:
                # Prefer a specific-source wait for the report.
                specific = [w for w in waits.values() if w[0] != ANY_SOURCE]
                blocked[r] = specific[0] if specific else \
                    next(iter(waits.values()))
        from repro.faults import describe_faults

        return DeadlockError.from_blocked(blocked, detail=detail,
                                          cycle=cycle,
                                          faults=describe_faults(self._world))

    # ------------------------------------------------------------------
    # finalize audit
    # ------------------------------------------------------------------
    def register_comm(self, comm: "Communicator") -> None:
        """Track a world communicator for the generation-skew audit."""
        self._comms.append(comm)

    def finalize(self) -> None:
        """Audit the world after a successful run.

        Raises :class:`VerifierError` on undrained mailboxes (sends that
        no receive ever matched) or collective generation skew across
        the registered world communicators.
        """
        problems: list[str] = []
        for rank, box in enumerate(self._world.mailboxes):
            for msg in box:
                self.unmatched_sends[(msg.source, rank, msg.tag)] += 1
        if self.unmatched_sends:
            leftovers = ", ".join(
                f"{n} message(s) from rank {src} to rank {dst} with tag {tag}"
                for (src, dst, tag), n in sorted(self.unmatched_sends.items())
            )
            total = sum(self.unmatched_sends.values())
            problems.append(
                f"{total} undrained message(s) — unmatched sends left in "
                f"mailboxes at finalize: {leftovers}"
            )
        generations = {c.rank: c._generation for c in self._comms}
        if generations and len(set(generations.values())) > 1:
            per_rank = ", ".join(
                f"rank {r}={g}" for r, g in sorted(generations.items())
            )
            problems.append(
                "collective generation skew: ranks completed different "
                f"numbers of collectives ({per_rank}); some rank skipped "
                "or repeated a collective"
            )
        if problems:
            raise VerifierError(
                "finalize audit failed: " + "; ".join(problems)
            )
