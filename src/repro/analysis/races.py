"""MPI011 — shared-state mutation from rank closures.

The threaded engine runs every rank's closure concurrently in one
address space; the process engine runs them in *separate* address
spaces.  Either way, a rank function that mutates an object captured
from the enclosing scope is wrong: under threads it is a data race
(the runtime verifier can only catch it after the fact), under
processes each rank silently mutates its own copy and the results
diverge.  The only sanctioned cross-rank channels are the communicator
and an explicit lock.

The rule is deliberately narrow to stay precise: it only analyses
function definitions that are *literally passed* to ``run_spmd`` with
an explicit ``engine="threaded"`` or ``engine="process"`` argument in
the same scope, and only flags mutations of captured (free) names —
container mutators, in-place ndarray methods, subscript/attribute
stores, augmented assignment — that are not under a ``with <lock>:``
block and not on a communicator.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import Finding, Rule, register
from repro.analysis.summary import (
    CONTAINER_MUTATORS,
    INPLACE_METHODS,
    ModuleSummary,
    dotted_name,
    is_comm_name,
    walk_no_nested_functions,
)

#: Engines whose rank closures this rule analyses.
_SHARED_OR_FORKED = ("threaded", "process")

#: A ``with`` context whose name ends in one of these is lock-like.
_LOCK_SUFFIXES = ("lock", "mutex", "cond", "condition", "semaphore")


def _engine_literal(call: ast.Call) -> str | None:
    for kw in call.keywords:
        if kw.arg == "engine" and isinstance(kw.value, ast.Constant) and \
                isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _spmd_rank_fn_name(call: ast.Call) -> str | None:
    """The name of the rank closure in a ``run_spmd(fn, ...)`` call."""
    func_name = dotted_name(call.func) if isinstance(
        call.func, (ast.Attribute, ast.Name)) else None
    if func_name is None or func_name.rsplit(".", 1)[-1] != "run_spmd":
        return None
    fn_arg: ast.expr | None = None
    if call.args:
        fn_arg = call.args[0]
    else:
        for kw in call.keywords:
            if kw.arg == "fn":
                fn_arg = kw.value
    if isinstance(fn_arg, ast.Name):
        return fn_arg.id
    return None


def _local_defs(scope: ast.AST) -> dict[str, ast.FunctionDef]:
    defs: dict[str, ast.FunctionDef] = {}
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, ast.FunctionDef):
            defs[child.name] = child
    return defs


def _bound_names(fn: ast.FunctionDef) -> set[str]:
    """Names that are local to ``fn``: parameters and assignment targets."""
    args = fn.args
    bound = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for node in walk_no_nested_functions(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and \
                            isinstance(sub.ctx, ast.Store):
                        bound.add(sub.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound


def _is_lock_guard(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = dotted_name(expr)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return last.endswith(_LOCK_SUFFIXES)


def _mutated_base(node: ast.AST) -> tuple[str, ast.AST] | None:
    """The root name a statement/call mutates, if any."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in (CONTAINER_MUTATORS | INPLACE_METHODS):
        base = node.func.value
        name = dotted_name(base)
        if name is not None:
            return name.split(".", 1)[0], node
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                name = dotted_name(target.value)
                if name is not None:
                    return name.split(".", 1)[0], node
    return None


def _race_findings(path: str, fn: ast.FunctionDef,
                   engine: str) -> list[Finding]:
    bound = _bound_names(fn)
    findings: list[Finding] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not fn:
            return
        if isinstance(node, ast.With):
            inner = locked or any(_is_lock_guard(i) for i in node.items)
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        hit = _mutated_base(node)
        if hit is not None and not locked:
            root, site = hit
            if root not in bound and not is_comm_name(root, set()):
                findings.append(Finding(
                    path=path,
                    line=getattr(site, "lineno", fn.lineno),
                    col=getattr(site, "col_offset", 0),
                    code="MPI011",
                    message=(
                        f"rank closure '{fn.name}' mutates captured "
                        f"object '{root}' while running under "
                        f"engine='{engine}'; every rank shares (threaded) "
                        "or silently forks (process) this state — "
                        "exchange data through the communicator or guard "
                        "the mutation with a lock"
                    ),
                ))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    visit(fn, False)
    return findings


def check_shared_state_races(summary: ModuleSummary) -> list[Finding]:
    findings: list[Finding] = []
    scopes: list[ast.AST] = [summary.tree]
    scopes.extend(
        n for n in ast.walk(summary.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    seen: set[tuple[int, str]] = set()
    for scope in scopes:
        defs = _local_defs(scope)
        if not defs:
            continue
        for node in walk_no_nested_functions(scope):
            if not isinstance(node, ast.Call):
                continue
            engine = _engine_literal(node)
            if engine not in _SHARED_OR_FORKED:
                continue
            fn_name = _spmd_rank_fn_name(node)
            if fn_name is None or fn_name not in defs:
                continue
            key = (defs[fn_name].lineno, engine or "")
            if key in seen:
                continue
            seen.add(key)
            findings.extend(
                _race_findings(summary.path, defs[fn_name], engine))
    return findings


register(Rule(
    code="MPI011",
    name="rank-closure-shared-mutation",
    severity="error",
    summary="rank closure mutates captured state (thread race / fork skew)",
    doc=(
        "A function passed to run_spmd with engine='threaded' or "
        "engine='process' mutates an object captured from the "
        "enclosing scope (list append, dict update, ndarray in-place "
        "op, subscript or attribute store).  Under the threaded engine "
        "every rank races on the shared object; under the process "
        "engine each rank mutates a private copy and results silently "
        "diverge.  Exchange data through the communicator, or guard "
        "the mutation with a `with <lock>:` block when shared-memory "
        "aggregation is intended (threaded engine only)."
    ),
    module_check=check_shared_state_races,
))
