"""The rule framework: findings, rule objects, and the registry.

A :class:`Rule` packages everything the linter knows about one
diagnostic: its code (``MPI0xx``), severity, a one-line summary (shown
by ``repro lint --list-rules``), a documentation string (shown by
``repro lint --explain MPI0xx``), and up to two check callables:

* ``module_check(summary)`` — phase 1, runs once per module against
  that module's :class:`~repro.analysis.summary.ModuleSummary`;
* ``program_check(program)`` — phase 2, runs once per lint invocation
  against the :class:`~repro.analysis.summary.Program` holding *every*
  module summary, so protocols that span files (a send in ``server.py``
  answered in ``prefetch.py``) are matched whole-program.

Rules register themselves at import time via :func:`register`; the
registry is keyed by code and iterated in sorted-code order, but no
rule may depend on execution order — each check sees only immutable
summaries and returns its own findings (a property test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.summary import ModuleSummary, Program

#: Finding severities, mapped onto SARIF levels by the output layer.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One lint diagnosis, reported as ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One diagnostic: identity, docs, and its check phases."""

    code: str
    name: str
    severity: str
    summary: str
    doc: str
    module_check: Callable[["ModuleSummary"], list[Finding]] | None = field(
        default=None, repr=False
    )
    program_check: Callable[["Program"], list[Finding]] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"rule {self.code}: severity must be one of {SEVERITIES}"
            )


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (its code must be unused)."""
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in sorted-code order."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule | None:
    """The rule registered under ``code``, or None."""
    return _REGISTRY.get(code)


def rule_codes() -> frozenset[str]:
    """The set of registered codes (for --disable validation)."""
    return frozenset(_REGISTRY)


class _RuleCatalogue(Mapping[str, str]):
    """Live code -> one-line-summary view of the registry.

    Kept as a mapping (not a snapshot dict) so ``RULES`` — the public
    name tests and the CLI have always used — stays in sync with rules
    registered after import.
    """

    def __getitem__(self, code: str) -> str:
        return _REGISTRY[code].summary

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        return len(_REGISTRY)


#: Rule codes and their one-line descriptions.
RULES: Mapping[str, str] = _RuleCatalogue()
