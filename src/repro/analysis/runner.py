"""The lint driver: two-phase execution, suppression, and baselines.

Running a lint is: parse every target file, extract a
:class:`~repro.analysis.summary.ModuleSummary` per file (phase 1),
run every registered rule's ``module_check`` on each summary and every
``program_check`` once on the merged
:class:`~repro.analysis.summary.Program` (phase 2), then filter what
survives ``# noqa`` comments, ``--disable`` codes, and the committed
baseline.  Checks never see each other's output, so the finding set is
independent of rule execution order (pinned by a property test).

Suppression follows ruff semantics: a bare ``# noqa`` suppresses every
rule on its line, ``# noqa: MPI002,MPI003`` (comma- or
space-separated) suppresses exactly the listed codes.

A baseline file is a JSON list of finding *fingerprints*
(``path::code::message`` with embedded line numbers normalized out, so
unrelated edits that shift lines don't invalidate it).  Baselined
findings are dropped as a multiset: two identical pre-existing
findings stay suppressed, a third new one surfaces.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

# Importing the rule modules registers every rule with the framework.
from repro.analysis import modulerules as _modulerules  # noqa: F401
from repro.analysis import protocol as _protocol  # noqa: F401
from repro.analysis import races as _races  # noqa: F401
from repro.analysis.rules import Finding, Rule, all_rules, register
from repro.analysis.summary import (
    ModuleSummary,
    Program,
    build_program,
    summarize_module,
)

register(Rule(
    code="MPI000",
    name="parse-error",
    severity="error",
    summary="file could not be parsed",
    doc=(
        "The file is not valid Python, so no analysis ran on it.  The "
        "CLI exits 2 (internal/parse error) rather than 1 (findings) "
        "when any MPI000 is present, so CI can tell a broken tree from "
        "a protocol bug."
    ),
))

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<colon>\s*:\s*(?P<codes>[^#]*))?", re.IGNORECASE
)
_CODE_RE = re.compile(r"[A-Z]+[0-9]+")

#: Fingerprint messages with line references normalized, so baselines
#: survive unrelated edits that renumber lines.
_LINE_REF_RE = re.compile(r"line \d+")


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: Findings dropped because the baseline already records them.
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------
def noqa_codes(line: str) -> frozenset[str] | None:
    """Codes suppressed by a ``# noqa`` comment on ``line``.

    Returns None when the line has no noqa comment, an empty frozenset
    for a bare ``# noqa`` (suppress everything), or the set of codes
    for ``# noqa: MPI002,MPI003`` / ``# noqa: MPI002 MPI003`` forms.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    if m.group("colon") is None:
        return frozenset()
    codes = frozenset(
        c.upper() for c in _CODE_RE.findall(m.group("codes").upper())
    )
    # "# noqa:" with nothing parseable after it reads as a blanket
    # suppression, matching the bare form.
    return codes


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    codes = noqa_codes(lines[finding.line - 1])
    if codes is None:
        return False
    return not codes or finding.code in codes


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def fingerprint(finding: Finding) -> str:
    """A line-number-free identity for baselining a finding."""
    message = _LINE_REF_RE.sub("line <n>", finding.message)
    path = Path(finding.path).as_posix()
    return f"{path}::{finding.code}::{message}"


def load_baseline(path: str | Path) -> Counter[str]:
    """Read a baseline file into a fingerprint multiset."""
    from repro.errors import ConfigError

    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"baseline file does not exist: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline file {path} is not JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(
            doc.get("fingerprints"), list):
        raise ConfigError(
            f"baseline file {path} must be an object with a "
            "'fingerprints' list"
        )
    return Counter(str(fp) for fp in doc["fingerprints"])


def write_baseline(findings: Sequence[Finding], path: str | Path) -> None:
    """Write the baseline that suppresses exactly ``findings``."""
    doc = {
        "version": 1,
        "comment": (
            "Pre-existing `repro lint` findings, suppressed by "
            "fingerprint. Regenerate with: repro lint <targets> "
            "--write-baseline " + Path(path).as_posix()
        ),
        "fingerprints": sorted(fingerprint(f) for f in findings),
    }
    Path(path).write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(findings: Iterable[Finding],
                   baseline: Counter[str]) -> tuple[list[Finding], int]:
    """Drop baselined findings (as a multiset); returns (kept, dropped)."""
    budget = Counter(baseline)
    kept: list[Finding] = []
    dropped = 0
    for f in findings:
        fp = fingerprint(f)
        if budget[fp] > 0:
            budget[fp] -= 1
            dropped += 1
        else:
            kept.append(f)
    return kept, dropped


# ----------------------------------------------------------------------
# two-phase execution
# ----------------------------------------------------------------------
def run_checks(program: Program,
               rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run every rule over the program; order-independent by contract.

    ``rules`` overrides the execution order (the property test shuffles
    it); shared check callables (MPI002/MPI003 share one ledger pass)
    run once regardless of how many rules reference them.
    """
    ordered = all_rules() if rules is None else tuple(rules)
    findings: list[Finding] = []
    seen_checks: set[int] = set()
    for rule in ordered:
        for check in (rule.module_check,):
            if check is not None and id(check) not in seen_checks:
                seen_checks.add(id(check))
                for module in program.modules:
                    findings.extend(check(module))
        if rule.program_check is not None and \
                id(rule.program_check) not in seen_checks:
            seen_checks.add(id(rule.program_check))
            findings.extend(rule.program_check(program))
    return findings


def _parse_failure(path: str, exc: SyntaxError) -> Finding:
    return Finding(path=path, line=exc.lineno or 1, col=exc.offset or 0,
                   code="MPI000", message=f"could not parse: {exc.msg}")


def _filter(findings: Iterable[Finding], disabled: frozenset[str],
            lines_of: dict[str, list[str]]) -> list[Finding]:
    return sorted(
        (f for f in findings
         if f.code not in disabled and
         not _suppressed(f, lines_of.get(f.path, []))),
        key=lambda f: (f.path, f.line, f.col, f.code),
    )


def lint_source(source: str, path: str = "<string>",
                disable: Iterable[str] = ()) -> list[Finding]:
    """Lint one module's source text; returns surviving findings.

    The module is analysed as a one-file program, so program-phase
    rules (tag ledgers, request pairing) run over it too.
    """
    disabled = frozenset(c.strip().upper() for c in disable)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        if "MPI000" in disabled:
            return []
        return [_parse_failure(path, exc)]
    program = build_program([summarize_module(tree, path)])
    findings = run_checks(program)
    return _filter(findings, disabled, {path: source.splitlines()})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for p in paths:
        path = Path(p)
        if path.is_dir():
            for f in sorted(path.rglob("*.py")):
                seen.setdefault(f, None)
        else:
            seen.setdefault(path, None)
    return list(seen)


def lint_paths(paths: Iterable[str | Path],
               disable: Iterable[str] = (),
               baseline: Counter[str] | None = None) -> LintResult:
    """Lint every ``.py`` file under ``paths`` as one whole program."""
    from repro.errors import ConfigError

    disabled = frozenset(c.strip().upper() for c in disable)
    result = LintResult()
    summaries: list[ModuleSummary] = []
    lines_of: dict[str, list[str]] = {}
    parse_failures: list[Finding] = []
    for f in iter_python_files(paths):
        if not f.exists():
            raise ConfigError(f"lint target does not exist: {f}")
        source = f.read_text(encoding="utf-8")
        result.files.append(str(f))
        lines_of[str(f)] = source.splitlines()
        try:
            tree = ast.parse(source, filename=str(f))
        except SyntaxError as exc:
            parse_failures.append(_parse_failure(str(f), exc))
            continue
        summaries.append(summarize_module(tree, str(f)))
    findings = parse_failures + run_checks(build_program(summaries))
    kept = _filter(findings, disabled, lines_of)
    if baseline:
        kept, result.baselined = apply_baseline(kept, baseline)
    result.findings = kept
    return result
