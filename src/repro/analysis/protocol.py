"""Program-phase rules: cross-module protocol checking.

MPI002/MPI003 match tag ledgers over *every* module in the lint set —
the upgrade from the old per-module heuristic, whose false negatives
(any tag "received elsewhere" was unverifiable) and per-module escape
hatches this removes.  MPI008 checks the request/response discipline:
each ``*_REQUEST`` / ``*_QUERY`` tag that is sent must have a reachable
consumer somewhere in the program, and when the protocol defines the
paired ``*_RESPONSE`` / ``*_ANSWER`` tag, someone must actually send
it.

Tags are normalized through the merged constant environment (see
:meth:`~repro.analysis.summary.Program.normalize`), so ``Tags.X`` in
one module, ``message.Tags.X`` in another, and the folded integer in a
third all compare equal.  The rules stay deliberately conservative:
one unresolvable send tag disables MPI002 program-wide, and one
wildcard (or unresolvable) receive — e.g. a protocol pump's
``recv(ANY_SOURCE, ANY_TAG)`` — satisfies every send for MPI003.
"""

from __future__ import annotations

from repro.analysis.rules import Finding, Rule, register
from repro.analysis.summary import WILDCARD, CommOp, Program, Tag


def _op_finding(op: CommOp, code: str, message: str) -> Finding:
    return Finding(path=op.path, line=op.line, col=op.col, code=code,
                   message=message)


def _label(tag: Tag, symbol: str | None) -> str:
    if symbol is not None:
        return symbol
    return repr(tag)


# ----------------------------------------------------------------------
# MPI002 / MPI003 — whole-program tag ledger
# ----------------------------------------------------------------------
def check_tag_ledger(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    sends = [(op, program.normalize(op.tag, op.symbol))
             for op in program.sends]
    recvs = [(op, program.normalize(op.tag, op.symbol))
             for op in program.recvs]

    send_known = {tag for _, tag in sends if tag is not None}
    recv_known = {tag for _, tag in recvs if tag not in (None, WILDCARD)}
    unknown_send = any(tag is None for _, tag in sends)
    unknown_recv = any(tag is None for _, tag in recvs)
    recv_wild = any(tag == WILDCARD for _, tag in recvs)

    if recvs and not recv_wild and not unknown_recv:
        for op, tag in sends:
            if tag is not None and tag not in recv_known:
                findings.append(_op_finding(
                    op, "MPI003",
                    f"send with tag {_label(tag, op.symbol)} is never "
                    "received anywhere in the linted program (orphaned "
                    "send)",
                ))
    if sends and not unknown_send:
        for op, tag in recvs:
            if tag not in (None, WILDCARD) and tag not in send_known:
                findings.append(_op_finding(
                    op, "MPI002",
                    f"receive expects tag {_label(tag, op.symbol)} but no "
                    "send anywhere in the linted program uses it",
                ))
    return findings


register(Rule(
    code="MPI002",
    name="recv-tag-never-sent",
    severity="error",
    summary="receive tag is never sent anywhere in the program",
    doc=(
        "A receive names a constant tag that no send in the whole lint "
        "set uses.  The receive can never be satisfied and the rank "
        "blocks forever.  Matching is whole-program: a send in another "
        "module satisfies the receive.  One unresolvable send tag "
        "disables the rule rather than guessing."
    ),
    program_check=check_tag_ledger,
))

register(Rule(
    code="MPI003",
    name="orphaned-send",
    severity="error",
    summary="orphaned send: tag is never received anywhere in the program",
    doc=(
        "A send uses a constant tag that no receive in the whole lint "
        "set names.  The message is deposited and never drained — a "
        "protocol leak that the deadlock detector only sees when the "
        "sender later blocks.  A wildcard receive (ANY_TAG, e.g. a "
        "protocol pump) or an unresolvable receive tag anywhere "
        "disables the rule, since it may legitimately drain anything."
    ),
    # MPI003 shares check_tag_ledger with MPI002; registering the
    # callable once under MPI002 is enough for execution, but both
    # rules document it so --explain works for either code.
))


# ----------------------------------------------------------------------
# MPI008 — request/response tag-protocol pairing
# ----------------------------------------------------------------------
_PAIR_SUFFIXES = (("_REQUEST", "_RESPONSE"), ("_QUERY", "_ANSWER"))


def _paired_name(symbol: str) -> str | None:
    for req_suffix, resp_suffix in _PAIR_SUFFIXES:
        if symbol.endswith(req_suffix):
            return symbol[: -len(req_suffix)] + resp_suffix
    return None


def check_request_protocol(program: Program) -> list[Finding]:
    # Names of every tag constant the program knows about: folded
    # constants from the merged env plus symbols observed at any
    # send/recv/consumer site.
    known_names: dict[str, Tag] = {}
    for key, value in program.env.items():
        last = key.rsplit(".", 1)[-1]
        if last.isupper():
            known_names[last] = value
    sent_symbols: set[str] = set()
    sent_values: set[Tag] = set()
    for op in program.sends:
        if op.symbol is not None:
            sent_symbols.add(op.symbol)
            known_names.setdefault(op.symbol, program.normalize(
                op.tag, op.symbol))
        tag = program.normalize(op.tag, op.symbol)
        if tag is not None:
            sent_values.add(tag)
    consumed_symbols: set[str] = set()
    consumed_values: set[Tag] = set()
    for consumer in program.consumers:
        if consumer.symbol is not None:
            consumed_symbols.add(consumer.symbol)
            known_names.setdefault(consumer.symbol, program.normalize(
                consumer.tag, consumer.symbol))
        tag = program.normalize(consumer.tag, consumer.symbol)
        if tag is not None and tag != WILDCARD:
            consumed_values.add(tag)

    findings: list[Finding] = []
    reported: set[tuple[str, str]] = set()
    for op in program.sends:
        symbol = op.symbol
        if symbol is None or _paired_name(symbol) is None:
            continue
        tag = program.normalize(op.tag, op.symbol)
        consumed = (
            symbol in consumed_symbols
            or (tag is not None and tag in consumed_values)
        )
        if not consumed and (symbol, "consumer") not in reported:
            reported.add((symbol, "consumer"))
            findings.append(_op_finding(
                op, "MPI008",
                f"request tag {symbol} is sent but nothing in the linted "
                "program consumes it (no constant-tag receive, no "
                "`.tag ==` dispatch, no handler registration); the "
                "request can never be answered",
            ))
        response = _paired_name(symbol)
        if response is None or response not in known_names:
            # The protocol defines no paired response constant (e.g.
            # KMER_REQUEST is answered by the shared COUNT_RESPONSE);
            # nothing to pair.
            continue
        response_value = known_names[response]
        answered = (
            response in sent_symbols
            or (response_value is not None and response_value in sent_values)
        )
        if not answered and (symbol, "response") not in reported:
            reported.add((symbol, "response"))
            findings.append(_op_finding(
                op, "MPI008",
                f"request tag {symbol} has a paired response tag "
                f"{response} that is never sent anywhere in the linted "
                "program; the requester waits for an answer no responder "
                "produces",
            ))
    return findings


register(Rule(
    code="MPI008",
    name="unpaired-request-tag",
    severity="error",
    summary="*_REQUEST tag sent without a reachable responder",
    doc=(
        "Request/response discipline, checked whole-program.  For every "
        "sent `*_REQUEST` (or `*_QUERY`) tag: (a) some site must "
        "consume it — a constant-tag receive, a `msg.tag == Tags.X` "
        "dispatch comparison, or a `handlers[Tags.X] = fn` "
        "registration; (b) when the protocol defines the paired "
        "`*_RESPONSE` (`*_ANSWER`) constant, someone must send it.  "
        "Tags whose answers travel under a shared response tag (e.g. "
        "KMER_REQUEST -> COUNT_RESPONSE) define no paired constant and "
        "are exempt from (b)."
    ),
    program_check=check_request_protocol,
))
