"""Command-line interface.

Three subcommands mirror the project's workflows:

* ``repro correct`` — run distributed Reptile on a fasta + quality pair
  (or a Reptile configuration file), writing corrected reads;
* ``repro session`` — long-lived correction session: ingest several
  fasta inputs as incremental spectrum deltas, correct them against the
  combined spectrum, optionally checkpoint/resume the session state;
* ``repro serve`` — spectrum-as-a-service front-end: ingest every input
  as a spectrum delta, then submit each input as one async client batch
  so compatible requests coalesce into shared collective rounds
  (see :mod:`repro.service` and ``docs/SERVICE.md``);
* ``repro simulate`` — synthesize a dataset (genome, reads, qualities)
  as fasta/quality/fastq files, with optional localized error bursts;
* ``repro project`` — print a BlueGene/Q scaling projection for one of
  the Table I datasets;
* ``repro lint`` — run the whole-program MPI-correctness pass over SPMD
  sources (see :mod:`repro.analysis` and ``repro lint --list-rules``).

``python -m repro ...`` and the ``repro`` console script are equivalent.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config import ReptileConfig
from repro.datasets.profiles import PROFILES
from repro.errors import ReproError
from repro.parallel.driver import ParallelReptile
from repro.parallel.heuristics import HeuristicConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed-memory Reptile error correction "
                    "(IPDPSW 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ----------------------------------------------------------- correct
    c = sub.add_parser("correct", help="correct reads from files")
    c.add_argument("--config", help="Reptile-style configuration file")
    c.add_argument("--fasta", help="input fasta (numeric record names)")
    c.add_argument("--quality", help="input quality file")
    c.add_argument("--output", required=True, help="corrected fasta path")
    c.add_argument("--nranks", type=int, default=4,
                   help="simulated MPI ranks (default 4)")
    c.add_argument("--engine",
                   choices=["cooperative", "sequential", "threaded",
                            "process"],
                   default="cooperative",
                   help="rank scheduler: cooperative/sequential "
                        "(deterministic turns), threaded (free threads), "
                        "process (shared-nothing spawned interpreters)")
    c.add_argument("--kmer-length", type=int, default=12)
    c.add_argument("--tile-overlap", type=int, default=4)
    c.add_argument("--kmer-threshold", type=int, default=0,
                   help="0 = derive from the data")
    c.add_argument("--tile-threshold", type=int, default=0)
    c.add_argument("--chunk-size", type=int, default=2000)
    c.add_argument("--universal", action="store_true",
                   help="universal message heuristic")
    c.add_argument("--prefetch", action="store_true",
                   help="bulk-prefetch Step IV lookups per chunk "
                        "(deduplicated, coalesced per owner, pipelined)")
    c.add_argument("--batch-reads", action="store_true",
                   help="batch reads table heuristic")
    c.add_argument("--read-tables", action="store_true",
                   help="retain read k-mer/tile tables")
    c.add_argument("--allgather", choices=["none", "kmers", "tiles", "both"],
                   default="none", help="spectrum replication")
    c.add_argument("--replication-group", type=int, default=1,
                   help="partial replication group size (Sec. V)")
    c.add_argument("--no-load-balance", action="store_true",
                   help="disable the static read redistribution")
    c.add_argument("--stats", action="store_true",
                   help="print per-rank statistics")
    c.add_argument("--report", help="write a JSON run report to this path")
    c.add_argument("--faults", metavar="PLAN.json",
                   help="inject faults from a FaultPlan JSON file "
                        "(see docs/FAULTS.md); the run must still produce "
                        "bit-identical output")

    # ----------------------------------------------------------- session
    se = sub.add_parser(
        "session",
        help="ingest several fasta inputs incrementally, then correct "
             "them against the combined spectrum",
    )
    se.add_argument("--fasta", action="append", default=[],
                    help="input fasta; repeat for each incremental delta")
    se.add_argument("--quality", action="append", default=[],
                    help="quality file matching each --fasta (all or none)")
    se.add_argument("--output", required=True, help="corrected fasta path")
    se.add_argument("--nranks", type=int, default=4,
                    help="simulated MPI ranks (default 4)")
    se.add_argument("--engine",
                    choices=["cooperative", "sequential", "threaded",
                             "process"],
                    default="cooperative",
                    help="rank scheduler (see 'repro correct --help')")
    se.add_argument("--kmer-length", type=int, default=12)
    se.add_argument("--tile-overlap", type=int, default=4)
    se.add_argument("--kmer-threshold", type=int, default=0,
                    help="0 = derive from the first input")
    se.add_argument("--tile-threshold", type=int, default=0)
    se.add_argument("--chunk-size", type=int, default=2000)
    se.add_argument("--universal", action="store_true",
                    help="universal message heuristic")
    se.add_argument("--prefetch", action="store_true",
                    help="bulk-prefetch Step IV lookups per chunk")
    se.add_argument("--batch-reads", action="store_true",
                    help="batch reads table heuristic")
    se.add_argument("--read-tables", action="store_true",
                    help="retain read k-mer/tile tables")
    se.add_argument("--allgather", choices=["none", "kmers", "tiles", "both"],
                    default="none", help="spectrum replication")
    se.add_argument("--replication-group", type=int, default=1,
                    help="partial replication group size (Sec. V)")
    se.add_argument("--no-load-balance", action="store_true",
                    help="disable the static read redistribution")
    se.add_argument("--checkpoint-dir",
                    help="write per-rank session bundles here after the run")
    se.add_argument("--resume-dir",
                    help="resume the session from bundles written by a "
                         "previous --checkpoint-dir run")
    se.add_argument("--stats", action="store_true",
                    help="print per-rank and session statistics")
    se.add_argument("--report", help="write a JSON run report to this path")

    # ------------------------------------------------------------- serve
    sv = sub.add_parser(
        "serve",
        help="run the async correction service: each --fasta is one "
             "client batch; compatible batches coalesce into shared "
             "collective rounds",
    )
    sv.add_argument("--fasta", action="append", default=[],
                    help="one client batch; repeat for each client "
                         "(every batch is also ingested as a spectrum "
                         "delta before serving begins)")
    sv.add_argument("--quality", action="append", default=[],
                    help="quality file matching each --fasta (all or none)")
    sv.add_argument("--output-dir", required=True,
                    help="corrected batches are written here as "
                         "client<N>.fasta")
    sv.add_argument("--nranks", type=int, default=4,
                    help="simulated MPI ranks (default 4)")
    sv.add_argument("--engine",
                    choices=["cooperative", "sequential", "threaded",
                             "process"],
                    default="cooperative",
                    help="rank scheduler (see 'repro correct --help')")
    sv.add_argument("--kmer-length", type=int, default=12)
    sv.add_argument("--tile-overlap", type=int, default=4)
    sv.add_argument("--kmer-threshold", type=int, default=0,
                    help="0 = derive from the first input")
    sv.add_argument("--tile-threshold", type=int, default=0)
    sv.add_argument("--chunk-size", type=int, default=2000)
    sv.add_argument("--universal", action="store_true",
                    help="universal message heuristic")
    sv.add_argument("--prefetch", action="store_true",
                    help="bulk-prefetch Step IV lookups per chunk")
    sv.add_argument("--batch-reads", action="store_true",
                    help="batch reads table heuristic")
    sv.add_argument("--read-tables", action="store_true",
                    help="retain read k-mer/tile tables")
    sv.add_argument("--allgather", choices=["none", "kmers", "tiles", "both"],
                    default="none", help="spectrum replication")
    sv.add_argument("--replication-group", type=int, default=1,
                    help="partial replication group size (Sec. V)")
    sv.add_argument("--no-load-balance", action="store_true",
                    help="disable the static read redistribution")
    sv.add_argument("--max-pending", type=int, default=64,
                    help="admission queue bound (jobs beyond it are "
                         "rejected with ServiceOverloadError)")
    sv.add_argument("--max-pending-per-client", type=int, default=8,
                    help="per-client quota within the admission queue")
    sv.add_argument("--stats", action="store_true",
                    help="print the service accounting counters")

    # ---------------------------------------------------------- simulate
    s = sub.add_parser("simulate", help="synthesize a dataset")
    s.add_argument("--profile", choices=sorted(PROFILES), default="E.Coli")
    s.add_argument("--genome-size", type=int, default=20_000)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--localized-errors", action="store_true",
                   help="contiguous error bursts (load-imbalance regime)")
    s.add_argument("--fasta", required=True, help="output fasta path")
    s.add_argument("--quality", required=True, help="output quality path")
    s.add_argument("--truth", help="optional error-free fasta (ground truth)")

    # ----------------------------------------------------------- project
    p = sub.add_parser("project", help="BG/Q scaling projection")
    p.add_argument("--dataset", choices=sorted(PROFILES), default="E.Coli")
    p.add_argument("--ranks", type=int, nargs="+",
                   default=[1024, 2048, 4096, 8192])
    p.add_argument("--ranks-per-node", type=int, default=32)
    p.add_argument("--batch-reads", action="store_true")
    p.add_argument("--chunk-size", type=int, default=2000)
    p.add_argument("--imbalanced", action="store_true",
                   help="also show the no-load-balance series")
    p.add_argument("--json", metavar="PATH",
                   help="also write the projection as JSON")

    # ------------------------------------------------------------ verify
    sub.add_parser(
        "verify",
        help="run the reproduction self-checks "
             "(correctness, equivalence, model fidelity)",
    )

    # -------------------------------------------------------------- lint
    lnt = sub.add_parser(
        "lint",
        help="static MPI-correctness lint over SPMD program sources",
    )
    lnt.add_argument("paths", nargs="*",
                     help="python files or directories to lint")
    lnt.add_argument("--disable", default="",
                     help="comma-separated rule codes to skip "
                          "(e.g. MPI003,MPI005)")
    lnt.add_argument("--list-rules", action="store_true",
                     help="print the rule catalogue and exit")
    lnt.add_argument("--explain", metavar="CODE",
                     help="print one rule's full documentation and exit")
    lnt.add_argument("--format", default="text",
                     choices=("text", "json", "sarif"),
                     help="report format (default: text)")
    lnt.add_argument("--out", metavar="PATH",
                     help="write the report to PATH instead of stdout")
    lnt.add_argument("--baseline", metavar="PATH",
                     help="suppress findings recorded in this baseline file")
    lnt.add_argument("--write-baseline", metavar="PATH",
                     help="record current findings as the new baseline "
                          "and exit 0")
    return parser


def _heuristics_from_args(args: argparse.Namespace) -> HeuristicConfig:
    return HeuristicConfig(
        universal=args.universal,
        batch_reads=args.batch_reads,
        read_kmers=args.read_tables,
        read_tiles=args.read_tables,
        allgather_kmers=args.allgather in ("kmers", "both"),
        allgather_tiles=args.allgather in ("tiles", "both"),
        prefetch=args.prefetch,
        replication_group=args.replication_group,
        load_balance=not args.no_load_balance,
    )


def _config_from_args(args: argparse.Namespace) -> ReptileConfig:
    if args.config:
        cfg = ReptileConfig.from_file(args.config)
        if args.fasta:
            cfg = cfg.with_updates(fasta_file=args.fasta)
        if args.quality:
            cfg = cfg.with_updates(quality_file=args.quality)
        return cfg
    if not args.fasta:
        raise ReproError("either --config or --fasta is required")
    kt, tt = args.kmer_threshold, args.tile_threshold
    if not kt or not tt:
        # Read the thresholds off the k-mer/tile count histograms of a
        # sample of the file (the classical valley method).
        from repro.core.pipeline import estimate_thresholds_from_file

        base = ReptileConfig(
            kmer_length=args.kmer_length, tile_overlap=args.tile_overlap
        )
        est_kt, est_tt = estimate_thresholds_from_file(
            args.fasta, args.quality, base
        )
        kt = kt or est_kt
        tt = tt or est_tt
        print(f"auto thresholds from count histograms: kmer>={kt}, tile>={tt}")
    return ReptileConfig(
        fasta_file=args.fasta,
        quality_file=args.quality or "",
        kmer_length=args.kmer_length,
        tile_overlap=args.tile_overlap,
        kmer_threshold=kt,
        tile_threshold=tt,
        chunk_size=args.chunk_size,
    )


def cmd_correct(args: argparse.Namespace) -> int:
    from repro.io.fasta import write_fasta

    cfg = _config_from_args(args)
    heur = _heuristics_from_args(args)
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import FaultPlan

        faults = FaultPlan.from_file(args.faults)
    runner = ParallelReptile(
        cfg, heur, nranks=args.nranks, engine=args.engine, faults=faults
    )
    result = runner.run_files(cfg.fasta_file, cfg.quality_file or None)
    block = result.corrected_block
    write_fasta(args.output, block.to_strings(), start_id=int(block.ids[0]))
    print(f"corrected {len(block)} reads "
          f"({result.total_corrections} substitutions) -> {args.output}")
    if result.crashed_ranks:
        print(f"recovered from injected crash of rank(s) "
              f"{result.crashed_ranks}")
    if args.report:
        from repro.parallel.report import write_run_report

        write_run_report(result, args.report)
        print(f"run report -> {args.report}")
    if args.stats:
        print(f"{'rank':>4} {'reads':>8} {'corrected':>9} "
              f"{'remote_kmers':>12} {'remote_tiles':>12} {'peak_bytes':>12}")
        for r, report in enumerate(result.reports):
            print(f"{r:>4} {len(report.block):>8} "
                  f"{report.errors_corrected:>9} "
                  f"{result.stats[r].get('remote_kmer_lookups'):>12,d} "
                  f"{result.stats[r].get('remote_tile_lookups'):>12,d} "
                  f"{report.memory.peak:>12,d}")
        from repro.parallel.lookup.stack import TIER_NAMES, resolution_order

        totals = result.stats[0].__class__()
        for s in result.stats:
            totals.merge(s)
        order = resolution_order(result.heuristics)
        print(f"lookup order: kmers={order['kmers']} tiles={order['tiles']}")
        print(f"{'tier':>12} {'requests':>12} {'hits':>12} "
              f"{'misses':>12} {'bytes':>14}")
        for tier in TIER_NAMES:
            requests = totals.get(f"lookup_{tier}_requests")
            if not requests:
                continue
            print(f"{tier:>12} {requests:>12,d} "
                  f"{totals.get(f'lookup_{tier}_hits'):>12,d} "
                  f"{totals.get(f'lookup_{tier}_misses'):>12,d} "
                  f"{totals.get(f'lookup_{tier}_bytes'):>14,d}")
        _print_session_row(totals)
    return 0


def _print_session_row(totals) -> None:
    """The construction-session ledger lines of the ``--stats`` table."""
    print(f"{'session':>12} {'ingests':>10} {'exchanges':>10} "
          f"{'delta_bytes':>14} {'recompiles':>10}")
    print(f"{'':>12} {totals.get('session_ingests'):>10,d} "
          f"{totals.get('session_delta_exchanges'):>10,d} "
          f"{totals.get('session_delta_bytes'):>14,d} "
          f"{totals.get('session_recompiles'):>10,d}")


def cmd_session(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.io.fasta import write_fasta
    from repro.io.partition import load_rank_block
    from repro.io.records import ReadBlock
    from repro.parallel.driver import ParallelSession
    from repro.parallel.session import CheckpointOp, CorrectOp, IngestOp

    if not args.fasta:
        raise ReproError("at least one --fasta is required")
    if args.quality and len(args.quality) != len(args.fasta):
        raise ReproError(
            "--quality must be repeated once per --fasta (or omitted)"
        )
    # Each file is one delta: load it whole (nranks=1 partitioning) and
    # let the SPMD session program slice it per rank.
    blocks = [
        load_rank_block(
            fasta, args.quality[i] if args.quality else None, 1, 0
        )
        for i, fasta in enumerate(args.fasta)
    ]
    cfg_ns = argparse.Namespace(**vars(args))
    cfg_ns.config = None
    cfg_ns.fasta = args.fasta[0]
    cfg_ns.quality = args.quality[0] if args.quality else None
    cfg = _config_from_args(cfg_ns)
    heur = _heuristics_from_args(args)
    # The corrected dataset is the union of every ingested delta,
    # renumbered so the merged output keeps one global order.
    full = ReadBlock.concat(blocks)
    full.ids[:] = np.arange(1, len(full) + 1, dtype=np.int64)
    ops: list = [IngestOp(b) for b in blocks]
    ops.append(CorrectOp(full))
    if args.checkpoint_dir:
        ops.append(CheckpointOp(args.checkpoint_dir))
    driver = ParallelSession(
        cfg, heur, nranks=args.nranks, engine=args.engine
    )
    out = driver.run(ops, resume_dir=args.resume_dir)
    result = out.result_for(0)
    block = result.corrected_block
    write_fasta(
        args.output, block.to_strings(),
        start_id=int(block.ids[0]) if len(block) else 1,
    )
    totals = out.session_totals()
    print(f"session: {len(blocks)} delta(s) ingested, corrected "
          f"{len(block)} reads ({result.total_corrections} substitutions) "
          f"-> {args.output}")
    if args.checkpoint_dir:
        print(f"session checkpoint -> {args.checkpoint_dir}")
    if args.report:
        from repro.parallel.report import write_run_report

        write_run_report(result, args.report)
        print(f"run report -> {args.report}")
    if args.stats:
        print(f"{'rank':>4} {'reads':>8} {'corrected':>9} {'ingests':>8} "
              f"{'peak_bytes':>12}")
        for r, report in enumerate(result.reports):
            rr = out.rank_reports[r]
            print(f"{r:>4} {len(report.block):>8} "
                  f"{report.errors_corrected:>9} "
                  f"{(rr.ingest_count if rr is not None else 0):>8} "
                  f"{report.memory.peak:>12,d}")
        merged = out.stats[0].__class__()
        for s in out.stats:
            merged.merge(s)
        _print_session_row(merged)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.io.fasta import write_fasta
    from repro.io.partition import load_rank_block
    from repro.service import ServicePolicy, SpectrumService

    if not args.fasta:
        raise ReproError("at least one --fasta is required")
    if args.quality and len(args.quality) != len(args.fasta):
        raise ReproError(
            "--quality must be repeated once per --fasta (or omitted)"
        )
    blocks = [
        load_rank_block(
            fasta, args.quality[i] if args.quality else None, 1, 0
        )
        for i, fasta in enumerate(args.fasta)
    ]
    cfg_ns = argparse.Namespace(**vars(args))
    cfg_ns.config = None
    cfg_ns.fasta = args.fasta[0]
    cfg_ns.quality = args.quality[0] if args.quality else None
    cfg = _config_from_args(cfg_ns)
    heur = _heuristics_from_args(args)
    policy = ServicePolicy(
        max_pending=args.max_pending,
        max_pending_per_client=args.max_pending_per_client,
    )
    service = SpectrumService(
        cfg, args.nranks, heuristics=heur, engine=args.engine,
        policy=policy,
    )

    async def drive():
        async with service:
            # Every batch is a spectrum delta first: the service corrects
            # each client against the union spectrum, like `repro session`.
            for block in blocks:
                await service.ingest(block)
            # Then each batch is one client's submission; issuing them
            # concurrently lets the queue coalesce compatible requests
            # into shared collective rounds.
            return await asyncio.gather(*(
                service.correct(block, client=f"client{i}")
                for i, block in enumerate(blocks)
            ))

    batches = asyncio.run(drive())
    os.makedirs(args.output_dir, exist_ok=True)
    total = 0
    for i, batch in enumerate(batches):
        path = os.path.join(args.output_dir, f"client{i}.fasta")
        block = batch.block
        write_fasta(
            path, block.to_strings(),
            start_id=int(block.ids[0]) if len(block) else 1,
        )
        corrections = int(batch.corrections_per_read.sum())
        total += corrections
        print(f"client{i}: {len(block)} reads "
              f"({corrections} substitutions) -> {path}")
    report = service.result.report
    print(f"service: {report.submitted} job(s), {report.rounds} correction "
          f"round(s), {report.coalesced} coalesced, "
          f"{report.rejected} rejected, {total} substitutions total")
    if args.stats:
        for name, value in report.as_counters().items():
            print(f"{name:>24} {value:>10,d}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.io.fasta import write_fasta
    from repro.io.quality import write_quality
    from repro.kmer.codec import decode_sequence

    profile = PROFILES[args.profile]
    dataset = profile.scaled(
        genome_size=args.genome_size, seed=args.seed,
        localized_errors=args.localized_errors or None,
    )
    block = dataset.block
    write_fasta(args.fasta, block.to_strings())
    write_quality(
        args.quality,
        [block.quals[i, : block.lengths[i]].tolist() for i in range(len(block))],
    )
    print(f"{args.profile}: {len(block)} reads of {block.max_length} bp, "
          f"{dataset.n_errors} injected errors -> {args.fasta}, {args.quality}")
    if args.truth:
        truth = [
            decode_sequence(dataset.true_codes[i]) for i in range(len(block))
        ]
        write_fasta(args.truth, truth)
        print(f"ground truth -> {args.truth}")
    return 0


def cmd_project(args: argparse.Namespace) -> int:
    from repro.perfmodel.calibrate import workload_for_profile
    from repro.perfmodel.machine import BGQMachine
    from repro.perfmodel.predict import PerformancePredictor
    from repro.perfmodel.scaling import ScalingStudy

    heur = HeuristicConfig(batch_reads=args.batch_reads)
    pred = PerformancePredictor(
        BGQMachine(), workload_for_profile(PROFILES[args.dataset]), heur,
        ranks_per_node=args.ranks_per_node, chunk_size=args.chunk_size,
    )
    study = ScalingStudy(pred)
    points = study.sweep(args.ranks)
    effs = study.efficiency(points)
    header = f"{'ranks':>7} {'nodes':>6} {'constr_s':>9} {'corr_s':>9} " \
             f"{'total_s':>9} {'eff':>5} {'lookup_mb':>10}"
    if args.imbalanced:
        header += f" {'imbalanced_s':>13}"
    print(f"{args.dataset} on BlueGene/Q, {args.ranks_per_node} ranks/node")
    print(header)
    for pt, eff in zip(points, effs):
        line = (f"{pt.nranks:>7} {pt.nodes:>6} "
                f"{pt.balanced.construction_total:>9.1f} "
                f"{pt.balanced.correction_total:>9.1f} "
                f"{pt.total_balanced:>9.1f} {eff:>5.2f} "
                f"{pt.lookup_bytes_per_rank / 2**20:>10.1f}")
        if args.imbalanced:
            imb = "DNF" if pt.imbalanced_dnf else f"{pt.total_imbalanced:.0f}"
            line += f" {imb:>13}"
        print(line)
    if args.json:
        import json

        payload = {
            "dataset": args.dataset,
            "ranks_per_node": args.ranks_per_node,
            "points": [
                {
                    "nranks": pt.nranks,
                    "nodes": pt.nodes,
                    "construction_s": pt.balanced.construction_total,
                    "correction_s": pt.balanced.correction_total,
                    "total_s": pt.total_balanced,
                    "imbalanced_s": pt.total_imbalanced,
                    "imbalanced_dnf": pt.imbalanced_dnf,
                    "memory_peak_bytes": pt.balanced.memory_peak,
                    "lookup_kmer_bytes": pt.balanced.lookup_kmer_bytes,
                    "lookup_tile_bytes": pt.balanced.lookup_tile_bytes,
                    "efficiency": eff_,
                }
                for pt, eff_ in zip(points, effs)
            ],
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"projection JSON -> {args.json}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import RULES, get_rule, lint_paths
    from repro.analysis.output import render_json, render_sarif
    from repro.analysis.runner import load_baseline, write_baseline
    from repro.errors import ConfigError

    if args.list_rules:
        for code, description in sorted(RULES.items()):
            print(f"{code}  {description}")
        return 0
    if args.explain:
        rule = get_rule(args.explain.strip().upper())
        if rule is None:
            raise ConfigError(f"unknown rule code: {args.explain}")
        print(f"{rule.code} [{rule.severity}] {rule.name}")
        print(f"  {rule.summary}")
        print()
        print(f"  {rule.doc}")
        print()
        print(f"  Suppress with '# noqa: {rule.code}' or "
              f"'--disable {rule.code}'.")
        return 0
    if not args.paths:
        raise ConfigError("no lint targets given (pass files/directories, "
                          "or use --list-rules / --explain)")
    disable = [c.strip() for c in args.disable.split(",") if c.strip()]
    unknown = sorted(set(disable) - set(RULES))
    if unknown:
        raise ConfigError(
            f"unknown rule code(s) in --disable: {', '.join(unknown)}"
        )
    baseline = load_baseline(args.baseline) if args.baseline else None
    result = lint_paths(args.paths, disable=disable, baseline=baseline)
    if args.write_baseline:
        write_baseline(result.findings, args.write_baseline)
        print(f"baseline with {len(result.findings)} fingerprint(s) -> "
              f"{args.write_baseline}")
        return 0
    if args.format == "text":
        report_lines = [f.render() for f in result.findings]
        noun = "file" if len(result.files) == 1 else "files"
        tally = ("no findings" if result.clean
                 else f"{len(result.findings)} finding(s)")
        if result.baselined:
            tally += f" ({result.baselined} baselined)"
        report_lines.append(f"checked {len(result.files)} {noun}: {tally}")
        report = "\n".join(report_lines) + "\n"
    elif args.format == "json":
        report = render_json(result.findings, result.files)
    else:
        report = render_sarif(result.findings, result.files)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"lint report ({args.format}) -> {args.out}")
    else:
        print(report, end="")
    if any(f.code == "MPI000" for f in result.findings):
        return 2  # parse failure: the analysis itself could not run
    return 0 if result.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "correct":
            return cmd_correct(args)
        if args.command == "session":
            return cmd_session(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "simulate":
            return cmd_simulate(args)
        if args.command == "project":
            return cmd_project(args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "verify":
            from repro.verify import main as verify_main

            return verify_main([])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover - exercised via tests/main
    sys.exit(main())
