"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Sub-hierarchies follow the
package layout: codec / I/O / runtime (message passing) / configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration file or parameter set is invalid or inconsistent."""


class CodecError(ReproError):
    """A sequence cannot be encoded or a code cannot be decoded."""

    def __init__(self, message: str, *, position: int | None = None) -> None:
        super().__init__(message)
        #: Offset of the offending character within the input, when known.
        self.position = position


class SpectrumError(ReproError):
    """Spectrum construction or lookup failed (bad k, empty input, ...)."""


class HashTableError(ReproError):
    """An open-addressing table operation failed (e.g. table is full)."""


class FileFormatError(ReproError):
    """An input file does not conform to its declared format."""

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None) -> None:
        detail = message
        if path is not None:
            detail = f"{path}: {detail}"
        if line is not None:
            detail = f"{detail} (line {line})"
        super().__init__(detail)
        self.path = path
        self.line = line


class CommunicatorError(ReproError):
    """A message-passing operation was used incorrectly or failed."""


class RankMismatchError(CommunicatorError):
    """A collective was invoked with inconsistent arguments across ranks."""


class DeadlockError(CommunicatorError):
    """The runtime detected that all live ranks are blocked with no messages
    in flight, i.e. the SPMD program can never make progress again."""


class ModelError(ReproError):
    """A performance-model query is outside the model's valid domain."""
