"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Sub-hierarchies follow the
package layout: codec / I/O / runtime (message passing) / configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration file or parameter set is invalid or inconsistent."""


class CodecError(ReproError):
    """A sequence cannot be encoded or a code cannot be decoded."""

    def __init__(self, message: str, *, position: int | None = None) -> None:
        super().__init__(message)
        #: Offset of the offending character within the input, when known.
        self.position = position


class SpectrumError(ReproError):
    """Spectrum construction or lookup failed (bad k, empty input, ...)."""


class SessionError(ReproError):
    """A correction-session operation was used out of protocol (e.g.
    ingest after a one-shot finalize, or checkpoint without raw state)."""


class ServiceError(ReproError):
    """The correction service front-end failed (fleet down, bad client
    request, or a round that could not complete)."""


class ServiceOverloadError(ServiceError):
    """An admission-control rejection: the service's bounded queue is
    full (``scope="queue"``) or the submitting client exceeded its
    per-client quota (``scope="client"``).  Typed so clients can back
    off and retry without parsing messages; carries the backpressure
    facts the client needs to decide how long to wait."""

    def __init__(
        self,
        message: str,
        *,
        client: str | None = None,
        depth: int | None = None,
        limit: int | None = None,
        scope: str = "queue",
    ) -> None:
        super().__init__(message)
        #: The client whose submission was rejected, when known.
        self.client = client
        #: Queue depth (or the client's pending count) at rejection time.
        self.depth = depth
        #: The bound that was hit.
        self.limit = limit
        #: ``"queue"`` (global bound) or ``"client"`` (per-client quota).
        self.scope = scope


class HashTableError(ReproError):
    """An open-addressing table operation failed (e.g. table is full)."""


class FileFormatError(ReproError):
    """An input file does not conform to its declared format."""

    def __init__(self, message: str, *, path: str | None = None, line: int | None = None) -> None:
        detail = message
        if path is not None:
            detail = f"{path}: {detail}"
        if line is not None:
            detail = f"{detail} (line {line})"
        super().__init__(detail)
        self.path = path
        self.line = line


class CommunicatorError(ReproError):
    """A message-passing operation was used incorrectly or failed."""


class RankMismatchError(CommunicatorError):
    """A collective was invoked with inconsistent arguments across ranks."""


class WireFormatError(CommunicatorError):
    """A payload could not be encoded to (or decoded from) the wire
    format of :mod:`repro.simmpi.wire`: corrupt frame, unknown type
    code, or a payload above the frame size limit."""


def _fmt_pattern(source: int, tag: int) -> str:
    """Render a (source, tag) receive pattern; -1 is the wildcard."""
    src = "ANY_SOURCE" if source == -1 else str(source)
    tg = "ANY_TAG" if tag == -1 else str(tag)
    return f"recv(source={src}, tag={tg})"


class DeadlockError(CommunicatorError):
    """The runtime detected that the SPMD program can never make progress
    again (blocked ranks with no matching messages in flight).

    Every detector — the cooperative engine's nobody-can-run check, the
    opt-in wait-for-graph verifier, and the threaded engine's receive
    timeout — builds its message through :meth:`from_blocked`, so callers
    see one shape regardless of which detector fired first.
    """

    def __init__(self, message: str, *, blocked: dict[int, tuple[int, int]] | None = None,
                 cycle: list[int] | None = None, faults: str | None = None) -> None:
        super().__init__(message)
        #: rank -> (source, tag) each blocked rank was waiting on.
        self.blocked = dict(blocked or {})
        #: The ranks forming a wait-for cycle, when one was found.
        self.cycle = list(cycle or [])
        #: Rendering of the fault injector's pending/fired state when
        #: injection was active, so a chaos hang is attributable in one
        #: read (None on fault-free runs).
        self.faults = faults

    @classmethod
    def from_blocked(
        cls,
        blocked: dict[int, tuple[int, int]],
        *,
        detail: str,
        cycle: list[int] | None = None,
        faults: str | None = None,
    ) -> "DeadlockError":
        """The single code path that renders a deadlock diagnosis.

        ``blocked`` maps each stuck rank to the (source, tag) pattern it
        is blocked on; ``detail`` says which detector fired and why;
        ``cycle`` optionally names the ranks of a wait-for cycle;
        ``faults`` is the fault injector's self-description when a
        :class:`~repro.faults.FaultPlan` is active, so an injected stall
        is distinguishable from a genuine deadlock.
        """
        waits = "; ".join(
            f"rank {rank} blocked in {_fmt_pattern(src, tag)}"
            for rank, (src, tag) in sorted(blocked.items())
        )
        message = f"deadlock detected: {waits} [{detail}]"
        if cycle:
            chain = " -> ".join(str(r) for r in cycle)
            message += f" (wait-for cycle: {chain})"
        if faults:
            message += f" [fault injection active: {faults}]"
        return cls(message, blocked=blocked, cycle=cycle, faults=faults)


class RankCrashError(ReproError):
    """A scripted :class:`~repro.faults.CrashFault` fired: the rank dies
    mid-correction.  Raised *inside* the doomed rank and absorbed by the
    engines (the rank is marked crashed rather than failing the run);
    never propagates to callers of a survivable plan."""

    def __init__(self, rank: int, event: int) -> None:
        super().__init__(
            f"rank {rank} crashed by fault plan after correction-phase "
            f"event {event}"
        )
        self.rank = rank
        self.event = event


class LookupTimeoutError(CommunicatorError):
    """A resilient Step IV lookup exhausted its retry budget: some owner
    never answered within ``max_retries`` exponential-backoff rounds.
    The plan was not survivable for the fault sequence it produced."""

    def __init__(self, message: str, *, rank: int | None = None,
                 pending: list[int] | None = None,
                 attempts: int | None = None) -> None:
        super().__init__(message)
        self.rank = rank
        #: Owner ranks still owing a response when the budget ran out.
        self.pending = list(pending or [])
        self.attempts = attempts


class VerifierError(CommunicatorError):
    """The runtime verifier's finalize-time audit found a protocol
    violation: undrained mailboxes, unmatched sends, or collective
    generation skew across ranks."""


class ModelError(ReproError):
    """A performance-model query is outside the model's valid domain."""
