"""Reproduction self-check (``python -m repro.verify``).

A fast end-to-end smoke of the three claims this repository makes:

1. **Correctness** — the serial Reptile reference fixes injected errors
   with high precision on a fresh synthetic dataset;
2. **Equivalence** — the distributed implementation (a sample of
   heuristics and both engines) is bit-identical to the serial reference;
3. **Fidelity** — every performance-model anchor sits within its
   tolerance of the paper-reported value.

Prints one PASS/FAIL line per check and exits nonzero on any failure —
the command a packager runs after install, and CI's first gate.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

import numpy as np


def _check_correctness() -> str:
    from repro.bench.harness import small_scale
    from repro.core import LocalSpectrumView, ReptileCorrector, build_spectra
    from repro.core.metrics import evaluate_correction

    scale = small_scale(genome_size=8_000, seed=101)
    spectra = build_spectra(scale.dataset.block, scale.config)
    result = ReptileCorrector(
        scale.config, LocalSpectrumView(spectra)
    ).correct_block(scale.dataset.block)
    report = evaluate_correction(scale.dataset, result.block)
    assert report.gain > 0.6, f"gain {report.gain:.3f} below 0.6"
    assert report.precision > 0.95, f"precision {report.precision:.3f}"
    return (f"gain {report.gain:.3f}, precision {report.precision:.3f} "
            f"on {scale.dataset.n_errors} injected errors")


def _check_equivalence() -> str:
    from repro.bench.harness import small_scale
    from repro.core import LocalSpectrumView, ReptileCorrector, build_spectra
    from repro.parallel import HeuristicConfig, ParallelReptile

    scale = small_scale(genome_size=6_000, seed=102, chunk_size=200)
    spectra = build_spectra(scale.dataset.block, scale.config)
    serial = ReptileCorrector(
        scale.config, LocalSpectrumView(spectra)
    ).correct_block(scale.dataset.block)
    ref = serial.block.codes[np.argsort(serial.block.ids)]
    cases = [
        (HeuristicConfig(), 5, "cooperative"),
        (HeuristicConfig(universal=True, batch_reads=True), 3, "cooperative"),
        (HeuristicConfig(allgather_tiles=True), 4, "cooperative"),
        (HeuristicConfig(universal=True), 4, "threaded"),
    ]
    for heur, nranks, engine in cases:
        result = ParallelReptile(
            scale.config, heur, nranks=nranks, engine=engine
        ).run(scale.dataset.block)
        assert np.array_equal(result.corrected_block.codes, ref), (
            f"{heur.describe()} on {engine} diverged from serial"
        )
    return f"{len(cases)} heuristic/engine combinations bit-identical to serial"


def _check_anchors() -> str:
    from repro.perfmodel.calibrate import PAPER_ANCHORS, anchor_model_value as model_value

    worst = 0.0
    for anchor in PAPER_ANCHORS:
        value = model_value(anchor)
        rel = abs(value - anchor.paper_value) / anchor.paper_value
        assert rel <= anchor.tolerance, (
            f"{anchor.figure} {anchor.description}: {rel:.2f} > "
            f"{anchor.tolerance}"
        )
        worst = max(worst, rel / anchor.tolerance)
    return (f"{len(PAPER_ANCHORS)} paper anchors within tolerance "
            f"(worst at {worst:.0%} of its budget)")


CHECKS: list[tuple[str, Callable[[], str]]] = [
    ("correctness (serial Reptile on synthetic ground truth)", _check_correctness),
    ("equivalence (distributed == serial, heuristics x engines)", _check_equivalence),
    ("fidelity (performance model vs paper anchors)", _check_anchors),
]


def main(argv=None) -> int:
    """Run all self-checks; returns a process exit code."""
    failures = 0
    for name, check in CHECKS:
        start = time.perf_counter()
        try:
            detail = check()
            status = "PASS"
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            detail = str(exc)
            status = "FAIL"
            failures += 1
        elapsed = time.perf_counter() - start
        print(f"[{status}] {name} ({elapsed:.1f}s)\n       {detail}")
    if failures:
        print(f"\n{failures} of {len(CHECKS)} checks FAILED")
        return 1
    print(f"\nall {len(CHECKS)} checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests/main
    sys.exit(main())
