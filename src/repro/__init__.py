"""repro — a reproduction of "A Memory and Time Scalable Parallelization
of the Reptile Error-Correction Code" (Sachdeva, Aluru, Bader; IPDPSW 2016).

The package contains the full system stack the paper describes:

* :mod:`repro.kmer`, :mod:`repro.hashing`, :mod:`repro.io` — k-mer/tile
  codecs, hash-table spectra and the fasta/quality file formats;
* :mod:`repro.core` — the serial Reptile error corrector;
* :mod:`repro.datasets` — synthetic Illumina-like datasets with the
  Table I profiles (E.Coli / Drosophila / Human);
* :mod:`repro.simmpi` — a from-scratch message-passing runtime with MPI
  semantics (tagged p2p, probe, alltoallv, barriers) over Python threads;
* :mod:`repro.parallel` — the paper's contribution: distributed k-mer and
  tile spectra, message-based correction, static load balancing, and all
  of the paper's heuristics;
* :mod:`repro.perfmodel` — a calibrated BlueGene/Q model that projects
  measured run statistics to the paper's scales (Figs. 2-8);
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure.

Quickstart::

    from repro import (ReptileConfig, ParallelReptile, HeuristicConfig,
                       ECOLI, derive_thresholds)
    ds = ECOLI.scaled(genome_size=20_000)
    kt, tt = derive_thresholds(ECOLI.coverage, ECOLI.read_length, 12, 20, 8)
    cfg = ReptileConfig(kmer_threshold=kt, tile_threshold=tt)
    result = ParallelReptile(cfg, HeuristicConfig(), nranks=8).run(ds.block)
    print(result.accuracy(ds))
"""

from repro.config import ReptileConfig
from repro.core import (
    ReptileCorrector,
    CorrectionResult,
    SpectrumPair,
    LocalSpectrumView,
    build_spectra,
    derive_thresholds,
    evaluate_correction,
    AccuracyReport,
)
from repro.datasets import (
    DatasetProfile,
    ECOLI,
    DROSOPHILA,
    HUMAN,
    ReadSimulator,
    ErrorModel,
)
from repro.faults import CrashFault, FaultPlan, StallFault
from repro.io import ReadBlock
from repro.parallel import (
    ParallelReptile,
    ParallelRunResult,
    HeuristicConfig,
)
from repro.perfmodel import (
    BGQMachine,
    PerformancePredictor,
    ScalingStudy,
    workload_for_profile,
)
from repro.simmpi import run_spmd

__version__ = "1.0.0"

__all__ = [
    "ReptileConfig",
    "ReptileCorrector",
    "CorrectionResult",
    "SpectrumPair",
    "LocalSpectrumView",
    "build_spectra",
    "derive_thresholds",
    "evaluate_correction",
    "AccuracyReport",
    "DatasetProfile",
    "ECOLI",
    "DROSOPHILA",
    "HUMAN",
    "ReadSimulator",
    "ErrorModel",
    "ReadBlock",
    "ParallelReptile",
    "ParallelRunResult",
    "HeuristicConfig",
    "FaultPlan",
    "CrashFault",
    "StallFault",
    "BGQMachine",
    "PerformancePredictor",
    "ScalingStudy",
    "workload_for_profile",
    "run_spmd",
    "__version__",
]
