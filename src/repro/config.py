"""Reptile configuration.

The paper: "The input to parallel Reptile consists of a configuration file,
which specifies the fasta file and the quality file to be used for the error
correction" — plus the algorithm parameters (k-mer length, tile step,
thresholds, quality cutoffs) and the chunk size used by batched reading.
:class:`ReptileConfig` is that file as a validated dataclass; the on-disk
format is Reptile's ``key value`` lines with ``#`` comments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError
from repro.kmer.tiles import TileShape


@dataclass(frozen=True)
class ReptileConfig:
    """All parameters of a (serial or parallel) Reptile run.

    Attributes
    ----------
    fasta_file / quality_file:
        Input paths; empty strings for purely in-memory runs.
    kmer_length:
        k.  Tiles span ``2k - tile_overlap`` bases (must be <= 32).
    tile_overlap:
        Overlap between the two k-mers of a tile; the tiling stride is
        ``k - tile_overlap``.
    kmer_threshold / tile_threshold:
        Minimum spectrum count for a k-mer / tile to be *solid*.  Entries
        below the threshold are removed from the spectra after the global
        count exchange (Step III).
    quality_threshold:
        Bases with quality below this are substitution-candidate positions.
    max_candidate_positions:
        Cap on low-quality positions considered per tile (bounds the
        candidate explosion; lowest-quality positions win).
    max_distance:
        Maximum Hamming distance of a candidate tile (1 or 2).
    ambiguity_ratio:
        A correction is accepted only if the best candidate's count is at
        least this multiple of the runner-up's.
    max_corrections_per_read:
        Reads needing more substitutions than this are left uncorrected.
    chunk_size:
        Reads per processing chunk (Step I "read in chunks by each rank";
        also the batch size of the *batch reads table* heuristic).
    count_reverse_complement:
        Also count every window's reverse complement into the spectra.
        Real sequencing reads come from both genome strands, so a read's
        k-mers may only be supported by reverse-strand neighbours; Reptile
        therefore counts both orientations.  Off by default (the synthetic
        datasets are single-stranded unless asked otherwise).
    """

    fasta_file: str = ""
    quality_file: str = ""
    kmer_length: int = 12
    tile_overlap: int = 4
    kmer_threshold: int = 3
    tile_threshold: int = 2
    quality_threshold: int = 25
    max_candidate_positions: int = 6
    max_distance: int = 1
    ambiguity_ratio: float = 2.0
    max_corrections_per_read: int = 6
    chunk_size: int = 2000
    count_reverse_complement: bool = False

    def __post_init__(self) -> None:
        # TileShape validates k/overlap/width coherence.
        try:
            TileShape(self.kmer_length, self.tile_overlap)
        except Exception as exc:  # CodecError -> ConfigError at this boundary
            raise ConfigError(str(exc)) from exc
        if self.kmer_threshold < 1 or self.tile_threshold < 1:
            raise ConfigError("thresholds must be >= 1")
        if self.max_distance not in (1, 2):
            raise ConfigError("max_distance must be 1 or 2")
        if self.ambiguity_ratio < 1.0:
            raise ConfigError("ambiguity_ratio must be >= 1.0")
        if self.chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        if self.max_candidate_positions < 1:
            raise ConfigError("max_candidate_positions must be >= 1")
        if self.max_corrections_per_read < 0:
            raise ConfigError("max_corrections_per_read must be >= 0")
        if not 0 <= self.quality_threshold <= 60:
            raise ConfigError("quality_threshold must be in [0, 60]")

    @property
    def tile_shape(self) -> TileShape:
        """The tiling geometry implied by k and the overlap."""
        return TileShape(self.kmer_length, self.tile_overlap)

    def with_updates(self, **kwargs) -> "ReptileConfig":
        """A copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Reptile-style "key value" config files
    # ------------------------------------------------------------------
    _FILE_KEYS = {
        "InFaFile": ("fasta_file", str),
        "IQFile": ("quality_file", str),
        "KmerLen": ("kmer_length", int),
        "TileOverlap": ("tile_overlap", int),
        "KmerThreshold": ("kmer_threshold", int),
        "TileThreshold": ("tile_threshold", int),
        "QThreshold": ("quality_threshold", int),
        "MaxBadQPerKmer": ("max_candidate_positions", int),
        "HDMax": ("max_distance", int),
        "TRatio": ("ambiguity_ratio", float),
        "MaxErrPerRead": ("max_corrections_per_read", int),
        "BatchSize": ("chunk_size", int),
        "CountRevComp": ("count_reverse_complement", lambda v: v not in ("0", "false", "False", "no")),
    }

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ReptileConfig":
        """Parse a Reptile-style configuration file."""
        values: dict[str, object] = {}
        with open(path, "r", encoding="ascii") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split(None, 1)
                if len(parts) != 2:
                    raise ConfigError(
                        f"{path}: line {lineno}: expected 'Key value', got {raw!r}"
                    )
                key, val = parts
                if key not in cls._FILE_KEYS:
                    raise ConfigError(f"{path}: line {lineno}: unknown key {key!r}")
                attr, typ = cls._FILE_KEYS[key]
                try:
                    values[attr] = typ(val)
                except ValueError as exc:
                    raise ConfigError(
                        f"{path}: line {lineno}: bad value for {key}: {exc}"
                    ) from None
        return cls(**values)

    def to_file(self, path: str | os.PathLike) -> None:
        """Write the configuration in the file format ``from_file`` reads."""
        by_attr = {attr: key for key, (attr, _) in self._FILE_KEYS.items()}
        with open(path, "w", encoding="ascii") as fh:
            fh.write("# Reptile configuration (repro reproduction)\n")
            for f in fields(self):
                key = by_attr.get(f.name)
                if key is None:
                    continue
                value = getattr(self, f.name)
                if value == "":
                    continue  # empty paths fall back to the default on read
                fh.write(f"{key} {value}\n")
