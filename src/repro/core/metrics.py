"""Correction accuracy metrics against simulated ground truth.

The standard error-correction bookkeeping (as in the Yang/Chockalingam/Aluru
survey the paper cites): each base position falls into

* **TP** — an injected error restored to the true base;
* **FP** — a correct base changed (an *introduced* error), or an erroneous
  base changed to a still-wrong base (miscorrection);
* **FN** — an injected error left (or re-written) wrong.

``gain = (TP - FP) / (TP + FN)`` summarizes net benefit; sensitivity and
specificity are the usual ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.reads import SimulatedDataset
from repro.io.records import ReadBlock


@dataclass(frozen=True)
class AccuracyReport:
    """Correction quality relative to ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    total_errors: int
    bases_changed: int

    @property
    def gain(self) -> float:
        """(TP - FP) / total injected errors; 1.0 is perfect correction."""
        if self.total_errors == 0:
            return 0.0
        return (self.true_positives - self.false_positives) / self.total_errors

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN): fraction of injected errors fixed."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def precision(self) -> float:
        """TP / (TP + FP): fraction of changes that were right."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccuracyReport(gain={self.gain:.3f}, "
            f"sensitivity={self.sensitivity:.3f}, precision={self.precision:.3f}, "
            f"TP={self.true_positives}, FP={self.false_positives}, "
            f"FN={self.false_negatives})"
        )


def evaluate_correction(
    dataset: SimulatedDataset, corrected: ReadBlock
) -> AccuracyReport:
    """Score a corrected block against the dataset's ground truth.

    ``corrected`` may be a permutation of the original reads (the
    load-balancing redistribution reorders them); rows are matched by
    sequence number.
    """
    order = np.argsort(corrected.ids)
    ids_sorted = corrected.ids[order]
    expected = dataset.block.ids
    lookup = order[np.searchsorted(ids_sorted, expected)]
    if not np.array_equal(corrected.ids[lookup], expected):
        raise ValueError("corrected block does not cover the dataset's read ids")

    out_codes = corrected.codes[lookup]
    truth = dataset.true_codes
    observed = dataset.block.codes
    err = dataset.error_mask

    if out_codes.shape != truth.shape:
        raise ValueError(
            f"corrected code matrix {out_codes.shape} does not match "
            f"ground truth {truth.shape}"
        )

    changed = out_codes != observed
    now_correct = out_codes == truth

    tp = int((err & changed & now_correct).sum())
    fn = int((err & ~now_correct).sum())
    # FP covers both corrupting a correct base and rewriting an erroneous
    # base to a still-wrong base.
    fp = int((changed & ~now_correct).sum())

    return AccuracyReport(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        total_errors=int(err.sum()),
        bases_changed=int(changed.sum()),
    )
