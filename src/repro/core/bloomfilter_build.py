"""Bloom-prefiltered spectrum construction.

The paper notes: "A memory-efficient alternative to this step [threshold
removal] is usage of a Bloom filter."  The standard construction is a
two-pass build: pass one inserts every window into a Bloom filter and only
windows *seen before* enter the count table — singletons (the bulk of
error-induced spectrum noise) never occupy table slots, so the peak
footprint shrinks by roughly the singleton fraction at the cost of the
filter bits and a small false-positive leak.

This module provides the serial reference used by the Bloom ablation
benchmark; it mirrors :func:`repro.core.spectrum.build_spectra` with a
filter in front of each table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ReptileConfig
from repro.core.spectrum import SpectrumPair, block_kmer_ids, block_tile_ids
from repro.hashing.bloom import BloomFilter
from repro.io.records import ReadBlock


@dataclass
class BloomBuildReport:
    """Outcome of a Bloom-prefiltered build (for the ablation)."""

    spectra: SpectrumPair
    filter_bytes: int
    kmers_suppressed: int
    tiles_suppressed: int

    @property
    def table_bytes(self) -> int:
        return self.spectra.nbytes

    @property
    def total_bytes(self) -> int:
        """Tables plus filters — the quantity to compare with the exact
        build's peak table bytes."""
        return self.table_bytes + self.filter_bytes


def build_spectra_bloom(
    block: ReadBlock,
    config: ReptileConfig,
    fp_rate: float = 0.01,
    apply_threshold: bool = True,
) -> BloomBuildReport:
    """Serial spectrum construction with Bloom singleton suppression.

    Every window is first offered to a Bloom filter; only windows whose
    insertion reports "probably seen before" are counted.  Counting starts
    at the second occurrence, so each table count underestimates the true
    count by exactly one — thresholds are adjusted accordingly, and final
    counts are re-inflated, making the result directly comparable to the
    exact build (up to Bloom false positives letting a few singletons
    through with count 1, which thresholding then removes anyway).
    """
    shape = config.tile_shape
    spectra = SpectrumPair(shape=shape)
    n_windows = max(64, len(block) * max(1, block.max_length))
    kmer_filter = BloomFilter(expected_items=n_windows, fp_rate=fp_rate)
    tile_filter = BloomFilter(
        expected_items=max(64, n_windows // max(1, shape.step)), fp_rate=fp_rate
    )

    def offer(flat: np.ndarray, bloom: BloomFilter, table) -> int:
        """Count every occurrence except each key's first; returns the
        number of suppressed (first) occurrences."""
        if flat.size == 0:
            return 0
        uniq, counts = np.unique(flat, return_counts=True)
        seen = bloom.add_and_test(uniq)
        add = counts.astype(np.int64) - (~seen).astype(np.int64)
        keep = add > 0
        table.add_counts(uniq[keep], add[keep].astype(np.uint64))
        return int((~seen).sum())

    kmers_suppressed = 0
    tiles_suppressed = 0
    for chunk in block.chunks(config.chunk_size) if len(block) else ():
        kids, kvalid = block_kmer_ids(chunk, shape)
        kmers_suppressed += offer(kids[kvalid], kmer_filter, spectra.kmers)
        tids, tvalid = block_tile_ids(chunk, shape)
        tiles_suppressed += offer(tids[tvalid], tile_filter, spectra.tiles)

    if apply_threshold:
        # Counts are (occurrences - 1); shift the thresholds to match.
        spectra.kmers.filter_below(max(1, config.kmer_threshold - 1))
        spectra.tiles.filter_below(max(1, config.tile_threshold - 1))

    # Re-inflate counts so lookups agree with the exact build.
    for table in (spectra.kmers, spectra.tiles):
        keys, counts = table.items()
        if keys.size:
            table.add_counts(keys, np.ones(keys.shape[0], dtype=np.uint64))

    return BloomBuildReport(
        spectra=spectra,
        filter_bytes=kmer_filter.nbytes + tile_filter.nbytes,
        kmers_suppressed=kmers_suppressed,
        tiles_suppressed=tiles_suppressed,
    )
