"""K-mer count histograms and automatic threshold selection.

:func:`derive_thresholds` (the policy module) needs the dataset's coverage
and error rate up front.  When they are unknown — the situation for real
files — the classic alternative is to read the threshold off the *count
histogram*: error k-mers pile up at counts 1-2, genomic k-mers form a
Poisson-like bump around the effective coverage, and the valley between
the two is the natural solidity cutoff.  Quake and many later correctors
pick thresholds exactly this way; Reptile's manual thresholds can be
reproduced by it.

:func:`count_histogram` builds the histogram from a spectrum table,
:func:`valley_threshold` finds the valley, and
:func:`thresholds_from_spectra` applies it to both spectra of a run.
"""

from __future__ import annotations

import numpy as np

from repro.core.spectrum import SpectrumPair
from repro.errors import SpectrumError
from repro.hashing.counthash import CountHash


def count_histogram(table: CountHash, max_count: int = 256) -> np.ndarray:
    """Histogram ``h[c]`` = number of distinct keys with count ``c``.

    Counts above ``max_count`` are clamped into the last bin.  ``h[0]`` is
    always zero (a present key has count >= 1).
    """
    if max_count < 2:
        raise SpectrumError("max_count must be >= 2")
    _, counts = table.items()
    hist = np.zeros(max_count + 1, dtype=np.int64)
    if counts.size:
        clamped = np.minimum(counts.astype(np.int64), max_count)
        hist += np.bincount(clamped, minlength=max_count + 1)
    return hist


def valley_threshold(hist: np.ndarray, min_threshold: int = 2) -> int:
    """The count at the valley between the error and genomic modes.

    Scans for the first local minimum after the initial descent from the
    error spike; if the histogram decays monotonically (no genomic bump —
    e.g. coverage too low), falls back to ``min_threshold``.
    """
    hist = np.asarray(hist, dtype=np.int64)
    if hist.shape[0] < 4:
        raise SpectrumError("histogram too short to analyse")
    # Skip bin 0; start at the error spike (the global max of the low bins
    # is normally bin 1).
    c = 1
    top = hist.shape[0] - 1
    # Descend while strictly falling.
    while c < top and hist[c + 1] < hist[c]:
        c += 1
    if c >= top:
        return min_threshold
    # c is the first bin where the histogram stops falling: the valley,
    # provided a genuine bump follows.
    bump = hist[c + 1 :].max() if c + 1 < hist.shape[0] else 0
    if bump <= hist[c]:
        return min_threshold
    return max(min_threshold, int(c))


def thresholds_from_spectra(
    spectra: SpectrumPair, min_threshold: int = 2, max_count: int = 256
) -> tuple[int, int]:
    """(kmer_threshold, tile_threshold) read off the count histograms.

    Must be called on *pre-threshold* spectra (after thresholding the
    error mode is gone and there is no valley left to find).
    """
    kmer_hist = count_histogram(spectra.kmers, max_count=max_count)
    tile_hist = count_histogram(spectra.tiles, max_count=max_count)
    return (
        valley_threshold(kmer_hist, min_threshold=min_threshold),
        valley_threshold(tile_hist, min_threshold=min_threshold),
    )


def histogram_summary(hist: np.ndarray) -> dict[str, float]:
    """Descriptive statistics of a count histogram (for QC reports)."""
    hist = np.asarray(hist, dtype=np.int64)
    total = int(hist.sum())
    if total == 0:
        return {"distinct": 0, "singletons": 0, "singleton_fraction": 0.0,
                "mode_count": 0, "mean_count": 0.0}
    counts = np.arange(hist.shape[0])
    mean = float((counts * hist).sum() / total)
    # Mode of the non-error region (ignore bins 1-2).
    tail = hist.copy()
    tail[:3] = 0
    mode = int(tail.argmax()) if tail.any() else int(hist.argmax())
    return {
        "distinct": total,
        "singletons": int(hist[1]),
        "singleton_fraction": float(hist[1] / total),
        "mode_count": mode,
        "mean_count": mean,
    }
