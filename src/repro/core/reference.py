"""The pre-packing scalar corrector, frozen as a differential oracle.

:class:`UnpackedReferenceCorrector` preserves the byte-per-base
implementations that :class:`~repro.core.corrector.ReptileCorrector`
replaced with the bit-packed kernels: per-column tile gathering, the
per-site winner loop with scalar base substitution, the nested Python
distance-2 pair loop, and the unmemoized tile-start matrix.  It exists
so packed-vs-unpacked bit-identity can be property-tested and benchmarked
forever against the exact seed semantics, not a reconstruction of them.

Do not optimize this module; its value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.core.corrector import (
    CorrectionResult,
    ReptileCorrector,
    _TileBatch,
    _compute_tile_start_matrix,
)
from repro.io.records import ReadBlock
from repro.kmer.codec import INVALID_CODE
from repro.kmer.neighbors import substitute_at


class UnpackedReferenceCorrector(ReptileCorrector):
    """Seed corrector: unpacked gathers, per-site loops, scalar writes."""

    def correct_block(self, block: ReadBlock) -> CorrectionResult:
        """Correct every read of a block; the input block is not mutated."""
        n = len(block)
        codes = block.codes.copy()
        original = block.codes
        corrections = np.zeros(n, dtype=np.int64)
        starts_matrix = self._tile_start_matrix(block.lengths)
        tiles_examined = np.zeros(n, dtype=np.int64)
        tiles_below = np.zeros(n, dtype=np.int64)

        for j in range(starts_matrix.shape[1]):
            col = starts_matrix[:, j]
            active = np.nonzero(col >= 0)[0]
            if active.size == 0:
                continue
            starts = col[active].astype(np.int64)
            tile_ids, valid = self._gather_tiles(codes, active, starts)
            active, starts, tile_ids = (
                active[valid], starts[valid], tile_ids[valid]
            )
            if active.size == 0:
                continue
            tiles_examined[active] += 1
            if self._note_rows is not None:
                self._note_rows(active)
            counts = self.view.tile_counts(tile_ids)
            weak = counts < np.uint32(self.config.tile_threshold)
            rows, s, tids = active[weak], starts[weak], tile_ids[weak]
            tiles_below[rows] += 1
            if rows.size == 0:
                continue
            batch = self._generate_candidates(block, rows, s, tids)
            if batch.cand_ids.size == 0:
                continue
            self._apply_winners_loop(codes, corrections, batch)

        reverted = corrections > self.config.max_corrections_per_read
        if reverted.any():
            codes[reverted] = original[reverted]
            corrections[reverted] = 0

        out = ReadBlock(
            ids=block.ids.copy(),
            codes=codes,
            lengths=block.lengths.copy(),
            quals=block.quals.copy(),
        )
        return CorrectionResult(
            block=out,
            corrections_per_read=corrections,
            reads_reverted=reverted,
            tiles_examined=int(tiles_examined.sum()),
            tiles_below_threshold=int(tiles_below.sum()),
            tiles_examined_per_read=tiles_examined,
            tiles_below_per_read=tiles_below,
        )

    def _tile_start_matrix(self, lengths: np.ndarray) -> np.ndarray:
        """Seed behavior: recomputed per call, never memoized."""
        return _compute_tile_start_matrix(
            self.shape, np.ascontiguousarray(lengths, dtype=np.int64)
        )

    def _gather_tiles(
        self, codes: np.ndarray, rows: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tile ids at arbitrary (row, start) sites; also a validity mask."""
        w = self.shape.length
        cols = starts[:, None] + np.arange(w, dtype=np.int64)[None, :]
        window = codes[rows[:, None], cols]
        valid = ~(window == INVALID_CODE).any(axis=1)
        # Disjoint 2-bit fields, so the sum is a bitwise OR: one numpy
        # reduction packs every window instead of w sequential shifts.
        shifts = ((w - 1 - np.arange(w, dtype=np.int64)) * 2).astype(np.uint64)
        ids = ((window.astype(np.uint64) & np.uint64(3)) << shifts[None, :]).sum(
            axis=1, dtype=np.uint64
        )
        return ids, valid

    def _candidate_positions(
        self, block: ReadBlock, rows: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seed selection: unconditional stable quality argsort per site."""
        cfg = self.config
        w = self.shape.length
        cols = starts[:, None] + np.arange(w, dtype=np.int64)[None, :]
        quals = block.quals[rows[:, None], cols]
        low = quals < np.uint8(cfg.quality_threshold)
        order = np.argsort(quals, axis=1, kind="stable")
        sorted_low = np.take_along_axis(low, order, axis=1)
        keep = sorted_low & (
            np.cumsum(sorted_low, axis=1) <= cfg.max_candidate_positions
        )
        site_of, order_col = np.nonzero(keep)
        pos_flat = order[site_of, order_col]
        reorder = np.lexsort((pos_flat, site_of))
        return site_of[reorder], pos_flat[reorder]

    def _distance2_candidates(
        self,
        tile_ids: np.ndarray,
        pos_site: np.ndarray,
        pos_flat: np.ndarray,
        n_sites: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distance-2 candidates via the seed's Python pair loop."""
        w = self.shape.length
        npos = np.bincount(pos_site, minlength=n_sites)
        offsets = np.concatenate(([0], np.cumsum(npos)[:-1]))
        max_n = int(npos.max()) if npos.size else 0
        cand_chunks: list[np.ndarray] = []
        owner_chunks: list[np.ndarray] = []
        key_chunks: list[tuple[np.ndarray, ...]] = []
        for a in range(max_n - 1):
            for b in range(a + 1, max_n):
                sites = np.nonzero(npos > b)[0]
                if sites.size == 0:
                    continue
                pa = pos_flat[offsets[sites] + a]
                pb = pos_flat[offsets[sites] + b]
                base = substitute_at(tile_ids[sites], w, pa)
                combo = substitute_at(base.ravel(), w, np.repeat(pb, 3))
                cand_chunks.append(combo.ravel())
                owner_chunks.append(np.repeat(sites, 9))
                nine = sites.size * 9
                key_chunks.append((
                    np.full(nine, a, dtype=np.int64),
                    np.tile(np.repeat(np.arange(3, dtype=np.int64), 3),
                            sites.size),
                    np.full(nine, b, dtype=np.int64),
                    np.tile(np.arange(3, dtype=np.int64), sites.size * 3),
                ))
        if not cand_chunks:
            return (
                np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
            )
        cands = np.concatenate(cand_chunks)
        owners = np.concatenate(owner_chunks)
        ka = np.concatenate([k[0] for k in key_chunks])
        aa = np.concatenate([k[1] for k in key_chunks])
        kb = np.concatenate([k[2] for k in key_chunks])
        ab = np.concatenate([k[3] for k in key_chunks])
        perm = np.lexsort((ab, kb, aa, ka, owners))
        return cands[perm], owners[perm]

    def _apply_winners_loop(
        self,
        codes: np.ndarray,
        corrections: np.ndarray,
        batch: _TileBatch,
    ) -> None:
        """K-mer prune, tile lookup, ambiguity test, base substitution."""
        cfg = self.config
        shape = self.shape
        suffix_bits = np.uint64(2 * (shape.k - shape.overlap))
        kmer_mask = np.uint64((1 << (2 * shape.k)) - 1)

        first_kmers = (batch.cand_ids >> suffix_bits) & kmer_mask
        second_kmers = batch.cand_ids & kmer_mask
        both = np.concatenate([first_kmers, second_kmers])
        if self._note_rows is not None:
            crows = batch.rows[batch.cand_owner]
            self._note_rows(np.concatenate([crows, crows]))
        kcounts = self.view.kmer_counts(both)
        m = batch.cand_ids.shape[0]
        solid = (kcounts[:m] >= np.uint32(cfg.kmer_threshold)) & (
            kcounts[m:] >= np.uint32(cfg.kmer_threshold)
        )
        cand_ids = batch.cand_ids[solid]
        cand_owner = batch.cand_owner[solid]
        if cand_ids.size == 0:
            return
        if self._note_rows is not None:
            self._note_rows(batch.rows[cand_owner])
        tcounts = self.view.tile_counts(cand_ids).astype(np.int64)
        passing = tcounts >= cfg.tile_threshold
        cand_ids, cand_owner, tcounts = (
            cand_ids[passing], cand_owner[passing], tcounts[passing],
        )
        if cand_ids.size == 0:
            return

        # Per site: best and runner-up candidate counts.  The descending
        # sort must be stable so a count tie at the top resolves to the
        # *first* candidate in enumeration order — at ambiguity_ratio
        # == 1.0 a top tie still corrects, and an unstable sort would
        # leave the winner to numpy's quicksort internals.
        for site in np.unique(cand_owner):
            sel = cand_owner == site
            ids_s = cand_ids[sel]
            cnt_s = tcounts[sel]
            order = np.argsort(-cnt_s, kind="stable")
            best = int(cnt_s[order[0]])
            if order.size > 1:
                second = int(cnt_s[order[1]])
                if best < cfg.ambiguity_ratio * second:
                    continue  # ambiguous: do not correct
            winner = int(ids_s[order[0]])
            row = int(batch.rows[site])
            start = int(batch.starts[site])
            applied = self._substitute(
                codes, row, start, int(batch.tile_ids[site]), winner
            )
            corrections[row] += applied

    def _substitute(
        self, codes: np.ndarray, row: int, start: int, old: int, new: int
    ) -> int:
        """Write the bases where ``new`` differs from ``old``; returns count."""
        w = self.shape.length
        diff = old ^ new
        applied = 0
        for offset in range(w):
            shift = 2 * (w - 1 - offset)
            if (diff >> shift) & 3:
                codes[row, start + offset] = (new >> shift) & 3
                applied += 1
        return applied
