"""One-call serial correction pipeline.

For users who just want reads corrected — no rank counts, no heuristics —
:func:`correct_reads` bundles spectrum construction, optional automatic
thresholds (histogram valley when the config's thresholds are the
defaults and ``auto_thresholds`` is on) and the corrector into a single
call, in memory or file to file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ReptileConfig
from repro.core.corrector import CorrectionResult, ReptileCorrector
from repro.core.histogram import thresholds_from_spectra
from repro.core.spectrum import LocalSpectrumView, LookupStats, build_spectra
from repro.errors import SpectrumError
from repro.io.records import ReadBlock


@dataclass
class PipelineOutcome:
    """Everything the serial pipeline produced."""

    result: CorrectionResult
    config: ReptileConfig          # thresholds possibly auto-derived
    lookup_stats: LookupStats
    spectrum_sizes: tuple[int, int]

    @property
    def block(self) -> ReadBlock:
        return self.result.block

    @property
    def total_corrections(self) -> int:
        return self.result.total_corrections


def correct_reads(
    block: ReadBlock,
    config: ReptileConfig | None = None,
    auto_thresholds: bool = True,
) -> PipelineOutcome:
    """Correct a read block serially; returns corrected reads + stats.

    With ``auto_thresholds`` (the default), the spectra are built
    unthresholded first and the solidity cutoffs are read off the count
    histograms — no knowledge of coverage or error rate needed.  Pass
    explicit thresholds in ``config`` and ``auto_thresholds=False`` to
    control them directly.
    """
    config = config or ReptileConfig()
    if auto_thresholds:
        spectra = build_spectra(block, config, apply_threshold=False)
        kt, tt = thresholds_from_spectra(spectra)
        config = config.with_updates(kmer_threshold=kt, tile_threshold=tt)
        spectra.threshold(kt, tt)
    else:
        spectra = build_spectra(block, config)
    view = LocalSpectrumView(spectra)
    result = ReptileCorrector(config, view).correct_block(block)
    return PipelineOutcome(
        result=result,
        config=config,
        lookup_stats=view.stats,
        spectrum_sizes=(len(spectra.kmers), len(spectra.tiles)),
    )


def estimate_thresholds_from_file(
    fasta_path: str,
    quality_path: str | None = None,
    config: ReptileConfig | None = None,
    sample_reads: int = 20_000,
) -> tuple[int, int]:
    """Histogram-valley thresholds from a sample of a read file.

    Reads the first ``sample_reads`` records, builds unthresholded spectra
    and returns the valley cutoffs.  Sampling a prefix understates counts
    relative to the full file (coverage scales with reads), so the result
    is conservative — fine for solidity cutoffs, which only need to sit
    between the error mode and the genomic mode.
    """
    from itertools import islice

    from repro.io.fasta import read_fasta

    config = config or ReptileConfig()
    records = list(islice(read_fasta(fasta_path), sample_reads))
    if not records:
        raise SpectrumError(f"{fasta_path}: no reads to sample")
    block = ReadBlock.from_strings(
        [seq for _, seq in records], ids=[rid for rid, _ in records]
    )
    spectra = build_spectra(block, config, apply_threshold=False)
    return thresholds_from_spectra(spectra)


def correct_files(
    fasta_path: str,
    quality_path: str | None,
    output_path: str,
    config: ReptileConfig | None = None,
    auto_thresholds: bool = True,
) -> PipelineOutcome:
    """File-to-file serial correction (fasta [+ quality] in, fasta out)."""
    from repro.io.fasta import write_fasta
    from repro.io.partition import load_rank_block

    block = load_rank_block(fasta_path, quality_path, 1, 0)
    outcome = correct_reads(block, config, auto_thresholds=auto_thresholds)
    out = outcome.block
    start = int(out.ids[0]) if len(out) else 1
    write_fasta(output_path, out.to_strings(), start_id=start)
    return outcome
