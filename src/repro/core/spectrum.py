"""K-mer and tile spectrum construction, and the spectrum lookup interface.

The *k-mer spectrum* counts every k-mer occurring in the reads; the *tile
spectrum* counts tiles at the tiling stride.  Both live in
:class:`~repro.hashing.counthash.CountHash` tables (the paper's hash-table
layout, replacing the earlier sorted-array + binary-search design).

:class:`SpectrumView` is the lookup interface the corrector programs
against.  The serial reference uses :class:`LocalSpectrumView`; the
distributed implementation substitutes a view that consults the owned
tables first and sends messages for the rest — the corrector does not know
the difference, which is what makes serial-vs-parallel equivalence testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.config import ReptileConfig
from repro.hashing.counthash import CountHash
from repro.io.records import ReadBlock
from repro.kmer.bitpack import PackedBlock, pack_block, window_id_matrix
from repro.kmer.codec import reverse_complement_id
from repro.kmer.tiles import TileShape


@dataclass
class SpectrumPair:
    """The two spectra of a Reptile run plus their tiling geometry."""

    shape: TileShape
    kmers: CountHash = field(default_factory=CountHash)
    tiles: CountHash = field(default_factory=CountHash)

    @property
    def nbytes(self) -> int:
        """Combined memory footprint of both tables."""
        return self.kmers.nbytes + self.tiles.nbytes

    def threshold(self, kmer_threshold: int, tile_threshold: int) -> tuple[int, int]:
        """Drop sub-threshold entries from both tables (Step III epilogue).

        Returns (#kmers removed, #tiles removed).
        """
        return (
            self.kmers.filter_below(kmer_threshold),
            self.tiles.filter_below(tile_threshold),
        )


def pack_read_block(block: ReadBlock) -> PackedBlock:
    """Bit-pack a read block once for repeated window-id extraction."""
    return pack_block(block.codes, block.lengths)


def block_kmer_ids(block: ReadBlock, shape: TileShape) -> tuple[np.ndarray, np.ndarray]:
    """K-mer ids (every position) for a block: (ids, valid), shape (n, S)."""
    return window_id_matrix(pack_read_block(block), shape.k, step=1)


def block_tile_ids(block: ReadBlock, shape: TileShape) -> tuple[np.ndarray, np.ndarray]:
    """Tile ids at the tiling stride for a block: (ids, valid)."""
    return window_id_matrix(
        pack_read_block(block), shape.length, step=shape.step
    )


def block_window_ids_both_strands(
    ids: np.ndarray, valid: np.ndarray, width: int, reverse_complement: bool
) -> np.ndarray:
    """Flatten valid window ids, optionally adding reverse complements.

    Counting both orientations is how Reptile handles reads sampled from
    either genome strand: a read's windows are then supported by coverage
    from both strands.
    """
    flat = ids[valid]
    if not reverse_complement or flat.size == 0:
        return flat
    rc = reverse_complement_id(flat, width)
    return np.concatenate([flat, rc])


def accumulate_block(
    spectra: SpectrumPair,
    block: ReadBlock,
    count_reverse_complement: bool = False,
) -> None:
    """Add one read block's k-mers and tiles into the spectra (Step II core).

    The block is bit-packed once; both the k-mer and tile id matrices are
    extracted from the same packed words.
    """
    shape = spectra.shape
    packed = pack_read_block(block)
    kids, kvalid = window_id_matrix(packed, shape.k, step=1)
    spectra.kmers.add_counts(
        block_window_ids_both_strands(kids, kvalid, shape.k,
                                      count_reverse_complement)
    )
    tids, tvalid = window_id_matrix(packed, shape.length, step=shape.step)
    spectra.tiles.add_counts(
        block_window_ids_both_strands(tids, tvalid, shape.length,
                                      count_reverse_complement)
    )


def build_spectra(
    blocks: Iterable[ReadBlock] | ReadBlock,
    config: ReptileConfig,
    apply_threshold: bool = True,
) -> SpectrumPair:
    """Serial spectrum construction over one or more read blocks."""
    if isinstance(blocks, ReadBlock):
        blocks = [blocks]
    spectra = SpectrumPair(shape=config.tile_shape)
    for block in blocks:
        accumulate_block(
            spectra, block,
            count_reverse_complement=config.count_reverse_complement,
        )
    if apply_threshold:
        spectra.threshold(config.kmer_threshold, config.tile_threshold)
    return spectra


@runtime_checkable
class SpectrumView(Protocol):
    """Batch count lookups against the (possibly distributed) spectra."""

    def kmer_counts(self, ids: np.ndarray) -> np.ndarray:
        """Global count of each k-mer id (0 when absent anywhere)."""
        ...

    def tile_counts(self, ids: np.ndarray) -> np.ndarray:
        """Global count of each tile id (0 when absent anywhere)."""
        ...


@dataclass
class LookupStats:
    """Counts of spectrum queries issued through a view."""

    kmer_lookups: int = 0
    tile_lookups: int = 0
    kmer_hits: int = 0
    tile_hits: int = 0

    def merge(self, other: "LookupStats") -> None:
        self.kmer_lookups += other.kmer_lookups
        self.tile_lookups += other.tile_lookups
        self.kmer_hits += other.kmer_hits
        self.tile_hits += other.tile_hits


class _SerialStats:
    """Minimal stats sink for the serial view's private tier stack."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)


class _SerialComm:
    """The degenerate single-rank "communicator" of the serial stack."""

    rank = 0
    size = 1

    def __init__(self) -> None:
        self.stats = _SerialStats()


class LocalSpectrumView:
    """Serial view: a one-tier lookup stack per spectrum.

    Serial is the degenerate world where every table is "replicated", so
    each stack is a single
    :class:`~repro.parallel.lookup.tiers.AllgatherReplicaTier` over the
    whole spectrum — the same machinery every distributed view runs,
    which is what makes serial-vs-parallel equivalence exact by
    construction.  The per-tier counters land in :attr:`tier_counters`;
    the public :attr:`stats` keeps its historical semantics (hits are
    ids with count > 0).
    """

    def __init__(self, spectra: SpectrumPair) -> None:
        # Imported here, not at module top: repro.parallel imports this
        # module, so a top-level import would be circular.
        from repro.parallel.lookup.stack import LookupStack
        from repro.parallel.lookup.tiers import AllgatherReplicaTier

        self._spectra = spectra
        self.stats = LookupStats()
        self._comm = _SerialComm()
        self._kmer_stack = LookupStack(
            "kmer", [AllgatherReplicaTier("kmer", spectra.kmers)], self._comm
        )
        self._tile_stack = LookupStack(
            "tile", [AllgatherReplicaTier("tile", spectra.tiles)], self._comm
        )

    @property
    def tier_counters(self) -> dict[str, int]:
        """Per-tier ``lookup_*`` (and ladder) counters of this view."""
        return dict(self._comm.stats.counters)

    def kmer_counts(self, ids: np.ndarray) -> np.ndarray:
        """K-mer counts through the one-tier stack (with stats)."""
        counts = self._kmer_stack.counts(ids)
        self.stats.kmer_lookups += int(np.asarray(ids).size)
        self.stats.kmer_hits += int(np.count_nonzero(counts))
        return counts

    def tile_counts(self, ids: np.ndarray) -> np.ndarray:
        """Tile counts through the one-tier stack (with stats)."""
        counts = self._tile_stack.counts(ids)
        self.stats.tile_lookups += int(np.asarray(ids).size)
        self.stats.tile_hits += int(np.count_nonzero(counts))
        return counts
