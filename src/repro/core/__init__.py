"""Serial Reptile: the error-correction algorithm the paper parallelizes.

Reptile (Yang, Dorman & Aluru, Bioinformatics 2010) is a spectrum-based
substitution error corrector.  It builds two spectra — k-mers and *tiles*
(two overlapping k-mers) — and corrects reads tile by tile: a tile whose
spectrum count falls below a threshold is replaced by a solid
Hamming-distance neighbour, with candidate substitutions restricted to
low-quality base positions and accepted only when unambiguous.  Because a
tile has almost twice the characters of a k-mer, correction at the tile
level has far fewer candidates, which is the source of Reptile's accuracy.

This package is the *serial reference*: the distributed implementation in
:mod:`repro.parallel` reuses the same corrector against a remote spectrum
view, so the two can be compared read for read.
"""

from repro.core.spectrum import (
    SpectrumPair,
    SpectrumView,
    LocalSpectrumView,
    accumulate_block,
    build_spectra,
)
from repro.core.corrector import ReptileCorrector, CorrectionResult
from repro.core.policy import derive_thresholds, expected_kmer_coverage
from repro.core.metrics import AccuracyReport, evaluate_correction
from repro.core.histogram import (
    count_histogram,
    thresholds_from_spectra,
    valley_threshold,
)
from repro.core.persist import load_spectra, save_spectra
from repro.core.pipeline import (
    PipelineOutcome,
    correct_files,
    correct_reads,
    estimate_thresholds_from_file,
)

__all__ = [
    "SpectrumPair",
    "SpectrumView",
    "LocalSpectrumView",
    "accumulate_block",
    "build_spectra",
    "ReptileCorrector",
    "CorrectionResult",
    "derive_thresholds",
    "expected_kmer_coverage",
    "AccuracyReport",
    "evaluate_correction",
    "count_histogram",
    "thresholds_from_spectra",
    "valley_threshold",
    "load_spectra",
    "save_spectra",
    "PipelineOutcome",
    "correct_files",
    "correct_reads",
    "estimate_thresholds_from_file",
]
