"""Saving and loading spectra.

Spectrum construction reads the whole dataset; correction may be re-run
many times (different thresholds were already applied, but quality
cutoffs, ambiguity ratios or read subsets change between runs).
Persisting the built spectra — as a compressed ``.npz`` of flat key/count
arrays plus the tiling geometry — makes the construction a one-time cost.

The on-disk format is deliberately dumb: four numpy arrays and two
integers.  Anything that can read npz can consume the spectra.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.spectrum import SpectrumPair
from repro.errors import SpectrumError
from repro.hashing.counthash import CountHash
from repro.kmer.tiles import TileShape

#: Format marker stored in the file.
_FORMAT = "repro.spectra/1"


def save_spectra(spectra: SpectrumPair, path: str | os.PathLike) -> None:
    """Write a spectrum pair as compressed npz."""
    kmer_keys, kmer_counts = spectra.kmers.items()
    tile_keys, tile_counts = spectra.tiles.items()
    np.savez_compressed(
        path,
        format=np.array(_FORMAT),
        k=np.array(spectra.shape.k),
        overlap=np.array(spectra.shape.overlap),
        kmer_keys=kmer_keys,
        kmer_counts=kmer_counts,
        tile_keys=tile_keys,
        tile_counts=tile_counts,
    )


def load_spectra(path: str | os.PathLike) -> SpectrumPair:
    """Read a spectrum pair written by :func:`save_spectra`."""
    with np.load(path) as data:
        fmt = str(data["format"])
        if fmt != _FORMAT:
            raise SpectrumError(
                f"{path}: unsupported spectra format {fmt!r} "
                f"(expected {_FORMAT!r})"
            )
        shape = TileShape(int(data["k"]), int(data["overlap"]))
        kmers = CountHash(capacity=2 * max(1, data["kmer_keys"].shape[0]))
        kmers.add_counts(
            data["kmer_keys"], data["kmer_counts"].astype(np.uint64)
        )
        tiles = CountHash(capacity=2 * max(1, data["tile_keys"].shape[0]))
        tiles.add_counts(
            data["tile_keys"], data["tile_counts"].astype(np.uint64)
        )
    return SpectrumPair(shape=shape, kmers=kmers, tiles=tiles)
