"""Saving and loading spectra.

Spectrum construction reads the whole dataset; correction may be re-run
many times (different thresholds were already applied, but quality
cutoffs, ambiguity ratios or read subsets change between runs).
Persisting the built spectra — as a compressed ``.npz`` of flat key/count
arrays plus the tiling geometry — makes the construction a one-time cost.

The on-disk format is deliberately dumb: four numpy arrays and two
integers.  Anything that can read npz can consume the spectra.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.spectrum import SpectrumPair
from repro.errors import SpectrumError
from repro.hashing.counthash import CountHash
from repro.kmer.tiles import TileShape

#: Format marker stored in the file.
_FORMAT = "repro.spectra/1"

#: Format marker of a rank's recovery bundle (spill-mode replication).
_RECOVERY_FORMAT = "repro.recovery/1"

#: Format marker of a correction-session checkpoint (one rank's raw,
#: unfiltered spectrum state plus its read-table key unions).
_SESSION_FORMAT = "repro.session/1"


def save_spectra(spectra: SpectrumPair, path: str | os.PathLike) -> None:
    """Write a spectrum pair as compressed npz."""
    kmer_keys, kmer_counts = spectra.kmers.items()
    tile_keys, tile_counts = spectra.tiles.items()
    np.savez_compressed(
        path,
        format=np.array(_FORMAT),
        k=np.array(spectra.shape.k),
        overlap=np.array(spectra.shape.overlap),
        kmer_keys=kmer_keys,
        kmer_counts=kmer_counts,
        tile_keys=tile_keys,
        tile_counts=tile_counts,
    )


def load_spectra(path: str | os.PathLike) -> SpectrumPair:
    """Read a spectrum pair written by :func:`save_spectra`."""
    with np.load(path) as data:
        fmt = str(data["format"])
        if fmt != _FORMAT:
            raise SpectrumError(
                f"{path}: unsupported spectra format {fmt!r} "
                f"(expected {_FORMAT!r})"
            )
        shape = TileShape(int(data["k"]), int(data["overlap"]))
        kmers = CountHash(capacity=2 * max(1, data["kmer_keys"].shape[0]))
        kmers.add_counts(
            data["kmer_keys"], data["kmer_counts"].astype(np.uint64)
        )
        tiles = CountHash(capacity=2 * max(1, data["tile_keys"].shape[0]))
        tiles.add_counts(
            data["tile_keys"], data["tile_counts"].astype(np.uint64)
        )
    return SpectrumPair(shape=shape, kmers=kmers, tiles=tiles)


def save_recovery_bundle(
    path: str | os.PathLike,
    *,
    kmer_keys: np.ndarray,
    kmer_counts: np.ndarray,
    tile_keys: np.ndarray,
    tile_counts: np.ndarray,
    ids: np.ndarray,
    codes: np.ndarray,
    lengths: np.ndarray,
    quals: np.ndarray,
) -> None:
    """Write one rank's recoverable state (spectrum shard + read
    partition) as compressed npz — the ``recovery="spill"`` alternative
    to holding the replica in a partner's memory."""
    np.savez_compressed(
        path,
        format=np.array(_RECOVERY_FORMAT),
        kmer_keys=kmer_keys,
        kmer_counts=kmer_counts,
        tile_keys=tile_keys,
        tile_counts=tile_counts,
        ids=ids,
        codes=codes,
        lengths=lengths,
        quals=quals,
    )


def load_recovery_bundle(path: str | os.PathLike) -> dict:
    """Read a bundle written by :func:`save_recovery_bundle`.

    Returns a dict with ``kmers``/``tiles`` rebuilt as
    :class:`CountHash` tables plus the raw ``codes``/``lengths``/
    ``quals`` arrays of the read partition."""
    with np.load(path) as data:
        fmt = str(data["format"])
        if fmt != _RECOVERY_FORMAT:
            raise SpectrumError(
                f"{path}: unsupported recovery format {fmt!r} "
                f"(expected {_RECOVERY_FORMAT!r})"
            )
        kmers = CountHash(capacity=2 * max(1, data["kmer_keys"].shape[0]))
        kmers.add_counts(
            data["kmer_keys"], data["kmer_counts"].astype(np.uint64)
        )
        tiles = CountHash(capacity=2 * max(1, data["tile_keys"].shape[0]))
        tiles.add_counts(
            data["tile_keys"], data["tile_counts"].astype(np.uint64)
        )
        out = {
            "kmers": kmers,
            "tiles": tiles,
            "ids": data["ids"],
            "codes": data["codes"],
            "lengths": data["lengths"],
            "quals": data["quals"],
        }
    return out


def save_session_bundle(
    path: str | os.PathLike,
    *,
    k: int,
    overlap: int,
    nranks: int,
    rank: int,
    n_ingests: int,
    kmer_keys: np.ndarray,
    kmer_counts: np.ndarray,
    tile_keys: np.ndarray,
    tile_counts: np.ndarray,
    read_kmer_keys: np.ndarray,
    read_tile_keys: np.ndarray,
) -> None:
    """Write one rank's correction-session checkpoint as compressed npz.

    The bundle holds the *raw* (unfiltered) owned tables — thresholds are
    lossy, so resumable sessions persist the pre-filter counts — plus the
    accumulated read-table key unions, so a resumed session can re-derive
    its complete serving state with one finalize."""
    np.savez_compressed(
        path,
        format=np.array(_SESSION_FORMAT),
        k=np.array(k),
        overlap=np.array(overlap),
        nranks=np.array(nranks),
        rank=np.array(rank),
        n_ingests=np.array(n_ingests),
        kmer_keys=kmer_keys,
        kmer_counts=kmer_counts,
        tile_keys=tile_keys,
        tile_counts=tile_counts,
        read_kmer_keys=read_kmer_keys,
        read_tile_keys=read_tile_keys,
    )


def load_session_bundle(path: str | os.PathLike) -> dict:
    """Read a bundle written by :func:`save_session_bundle`.

    Returns a dict with ``kmers``/``tiles`` rebuilt as raw
    :class:`CountHash` tables, the ``read_kmer_keys``/``read_tile_keys``
    unions, and the geometry/identity scalars for validation."""
    with np.load(path) as data:
        fmt = str(data["format"])
        if fmt != _SESSION_FORMAT:
            raise SpectrumError(
                f"{path}: unsupported session format {fmt!r} "
                f"(expected {_SESSION_FORMAT!r})"
            )
        kmers = CountHash(capacity=2 * max(1, data["kmer_keys"].shape[0]))
        kmers.add_counts(
            data["kmer_keys"], data["kmer_counts"].astype(np.uint64)
        )
        tiles = CountHash(capacity=2 * max(1, data["tile_keys"].shape[0]))
        tiles.add_counts(
            data["tile_keys"], data["tile_counts"].astype(np.uint64)
        )
        out = {
            "kmers": kmers,
            "tiles": tiles,
            "read_kmer_keys": data["read_kmer_keys"].astype(np.uint64),
            "read_tile_keys": data["read_tile_keys"].astype(np.uint64),
            "k": int(data["k"]),
            "overlap": int(data["overlap"]),
            "nranks": int(data["nranks"]),
            "rank": int(data["rank"]),
            "n_ingests": int(data["n_ingests"]),
        }
    return out
