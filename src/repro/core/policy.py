"""Threshold derivation policy.

Spectrum thresholds separate *solid* k-mers/tiles (sampled from the genome
many times) from error artifacts (each error spawns up to k unique k-mers
that recur only by coincidence).  With coverage ``c`` and per-base error
rate ``e``, a genomic k-mer is sampled ``c * (L - k + 1) / L * (1-e)^k``
times in expectation, while an error k-mer's expected count is below 1 for
realistic parameters — so any threshold a few standard deviations below the
genomic mean and above ~2 works.  These helpers pick one automatically so
examples and benchmarks don't hand-tune per dataset.
"""

from __future__ import annotations

import math


def expected_kmer_coverage(
    coverage: float, read_length: int, k: int, error_rate: float = 0.0
) -> float:
    """Expected spectrum count of a genomic k-mer.

    ``coverage * (L - k + 1) / L`` positions sample it, each error-free with
    probability ``(1 - e)^k``.
    """
    if coverage <= 0 or read_length <= 0 or k <= 0:
        raise ValueError("coverage, read_length and k must be positive")
    if k > read_length:
        raise ValueError("k exceeds the read length")
    if not 0.0 <= error_rate < 1.0:
        raise ValueError("error_rate must be in [0, 1)")
    return coverage * (read_length - k + 1) / read_length * (1.0 - error_rate) ** k


def derive_thresholds(
    coverage: float,
    read_length: int,
    k: int,
    tile_length: int,
    tile_step: int = 1,
    error_rate: float = 0.01,
) -> tuple[int, int]:
    """(kmer_threshold, tile_threshold) for a dataset's parameters.

    Picks the larger of 2 and a quarter of the expected genomic count —
    conservative enough that Poisson dispersion rarely drops a genomic
    k-mer below threshold, aggressive enough that error k-mers (expected
    count << 1) are filtered.

    Tiles are only extracted every ``tile_step`` positions of a read, so a
    genomic tile is sampled ``1/tile_step`` as often as a genomic k-mer at
    the same coverage; the tile threshold accounts for that dilution.
    """
    if tile_step < 1:
        raise ValueError("tile_step must be >= 1")
    kc = expected_kmer_coverage(coverage, read_length, k, error_rate)
    tc = expected_kmer_coverage(coverage, read_length, tile_length, error_rate)
    tc /= tile_step
    kmer_threshold = max(2, int(math.floor(kc / 4)))
    tile_threshold = max(2, int(math.floor(tc / 4)))
    return kmer_threshold, tile_threshold
