"""Per-rank communication accounting.

The performance model projects BlueGene/Q times from *measured* traffic:
how many point-to-point messages each rank sent, how many bytes, how many
remote k-mer/tile lookups it issued, and how much collective volume moved.
:class:`CommStats` is that ledger; every send increments it, and the
distributed driver adds protocol-level counters (lookups by kind).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


#: The resilience counter family (all live in :attr:`CommStats.counters`,
#: bumped only when a :class:`~repro.faults.FaultPlan` is active; see
#: ``docs/FAULTS.md`` for the full glossary):
#:
#: * ``frames_dropped`` / ``frames_corrupted`` / ``frames_duplicated`` /
#:   ``frames_delayed`` — injector verdicts, charged to the sender.
#: * ``lookup_retries`` — resilient lookup rounds re-sent after a
#:   timeout; ``lookup_timeouts`` — deadlines that expired (each timeout
#:   that still has budget left becomes a retry).
#: * ``stale_responses`` — responses for an already-satisfied sequence
#:   number (a retry raced its original answer); benign, never lost data.
#: * ``crashes_injected`` / ``stalls_injected`` — scripted faults fired.
#: * ``replicas_sent`` / ``replicas_held`` — recovery shards shipped by
#:   doomed ranks / held by partners.
#: * ``takeover_reads`` — ward reads a partner re-corrected after its
#:   ward crashed.
#: * ``failover_requests_served`` — lookups a partner answered from a
#:   held replica on behalf of a dead owner.
RESILIENCE_COUNTERS = (
    "frames_dropped",
    "frames_corrupted",
    "frames_duplicated",
    "frames_delayed",
    "lookup_retries",
    "lookup_timeouts",
    "stale_responses",
    "crashes_injected",
    "stalls_injected",
    "replicas_sent",
    "replicas_held",
    "takeover_reads",
    "failover_requests_served",
)

#: The correction-session counter family (all in
#: :attr:`CommStats.counters`, bumped by
#: :class:`repro.parallel.session.CorrectionSession` and summed over
#: ranks in ``run_report``'s ``session`` section):
#:
#: * ``session_ingests`` — ``ingest()`` calls (one per rank per block of
#:   count deltas merged into the distributed spectrum).
#: * ``session_delta_exchanges`` — DELTA alltoallv rounds routing
#:   non-owned deltas to their owners (several per ingest under the
#:   batch-reads heuristic).
#: * ``session_delta_bytes`` — payload bytes of delta key/count pairs
#:   this rank routed to *other* ranks across those exchanges.
#: * ``session_recompiles`` — serving-state finalizations (threshold +
#:   read tables + replication + lookup-stack recompile).
SESSION_COUNTERS = (
    "session_ingests",
    "session_delta_exchanges",
    "session_delta_bytes",
    "session_recompiles",
)

#: The service-layer counter family (all in
#: :attr:`CommStats.counters`; bumped onto rank 0's ledger by
#: :class:`repro.service.SpectrumService` when the service closes, and
#: summed over ranks in ``run_report``'s ``service`` section — zeros on
#: any run that never went through the service front-end):
#:
#: * ``service_submitted`` — client jobs admitted past the bounded
#:   queue and quota checks.
#: * ``service_coalesced`` — correct jobs that shared a collective
#:   round with at least one other job (the coalescing win).
#: * ``service_rejected`` — submissions refused with a typed
#:   :class:`~repro.errors.ServiceOverloadError`.
#: * ``service_rounds`` — collective ``correct()`` rounds the backend
#:   fleet actually ran (fewer than submitted corrects when coalescing
#:   is doing its job).
SERVICE_COUNTERS = (
    "service_submitted",
    "service_coalesced",
    "service_rejected",
    "service_rounds",
)

#: The per-tier lookup counter family.  Every count resolution runs an
#: ordered tier stack (:mod:`repro.parallel.lookup`); the stack bumps
#: ``lookup_<tier>_requests`` / ``_hits`` / ``_misses`` / ``_bytes`` for
#: each tier it presents ids to, where ``hits + misses == requests`` at
#: every tier and ``bytes`` charges 12 bytes (id + count) per hit.
#: ``<tier>`` is one of
#: :data:`repro.parallel.lookup.stack.TIER_NAMES`.  These generalize the
#: legacy flat counters (``local_*``, ``group_*``, ``reads_table_*``,
#: ``remote_*``), which the tiers keep bumping unchanged.
LOOKUP_TIER_COUNTER_KINDS = ("requests", "hits", "misses", "bytes")


def _payload_nbytes(payload) -> int:
    """Data-byte size of a payload, without wire framing overhead.

    The communicator passes the exact encoded frame length straight to
    :meth:`CommStats.record_send`, so this sizer only serves callers
    that account traffic without encoding (tests, ad-hoc tooling).
    Payloads with no cheap analytic size — dicts, strings, arbitrary
    objects — are sized by actually encoding them, not the old
    one-machine-word guess.
    """
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_nbytes(p) for p in payload)
    if payload is None or isinstance(payload, (bool, int, float, np.generic)):
        # Scalars / None: count a machine word.
        return 8
    from repro.simmpi import wire

    return len(wire.encode_payload(payload))


@dataclass
class CommStats:
    """Traffic counters for one rank."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_tag: dict[int, int] = field(default_factory=dict)
    bytes_by_tag: dict[int, int] = field(default_factory=dict)
    #: Destination rank -> messages sent there; lets analyses classify
    #: traffic as on-node vs off-node for a given ranks-per-node mapping.
    messages_by_peer: dict[int, int] = field(default_factory=dict)
    bytes_by_peer: dict[int, int] = field(default_factory=dict)
    #: Protocol-level counters maintained by the Reptile driver, e.g.
    #: "remote_tile_lookups", "remote_kmer_lookups", "served_requests".
    counters: dict[str, int] = field(default_factory=dict)
    #: A rank's worker and communication threads both account traffic
    #: (the two-thread Step IV mode), so updates are locked.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # The process engine ships each child's ledger back to the parent by
    # pickle; the lock is process-local state and is rebuilt on arrival.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record_send(self, tag: int, payload, dest: int | None = None,
                    nbytes: int | None = None) -> None:
        """Account one outgoing message (thread-safe).

        ``nbytes`` is the exact encoded frame length when the caller has
        it (the communicator send boundary always does); without it the
        payload is sized by :func:`_payload_nbytes`.
        """
        if nbytes is None:
            nbytes = _payload_nbytes(payload)
        with self._lock:
            self.messages_sent += 1
            self.bytes_sent += nbytes
            self.messages_by_tag[tag] = self.messages_by_tag.get(tag, 0) + 1
            self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + nbytes
            if dest is not None:
                self.messages_by_peer[dest] = (
                    self.messages_by_peer.get(dest, 0) + 1
                )
                self.bytes_by_peer[dest] = (
                    self.bytes_by_peer.get(dest, 0) + nbytes
                )

    def onnode_fraction(self, rank: int, ranks_per_node: int) -> float:
        """Fraction of this rank's messages that would stay on-node if
        ranks were packed ``ranks_per_node`` to a node in rank order.

        This is the *measured* counterpart of the machine model's
        analytic on-node fraction.
        """
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        node = rank // ranks_per_node
        on = off = 0
        for peer, n in self.messages_by_peer.items():
            if peer // ranks_per_node == node:
                on += n
            else:
                off += n
        total = on + off
        return on / total if total else 0.0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named protocol counter (thread-safe)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Read a named protocol counter (0 when never bumped)."""
        return self.counters.get(name, 0)

    def prefixed(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix`` (e.g. the
        per-phase ``prefetch_*`` family), as a plain dict for reports."""
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith(prefix)
        }

    def merge(self, other: "CommStats") -> None:
        """Fold another rank's counters into this one (for totals)."""
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        for tag, n in other.messages_by_tag.items():
            self.messages_by_tag[tag] = self.messages_by_tag.get(tag, 0) + n
        for tag, n in other.bytes_by_tag.items():
            self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + n
        for peer, n in other.messages_by_peer.items():
            self.messages_by_peer[peer] = self.messages_by_peer.get(peer, 0) + n
        for peer, n in other.bytes_by_peer.items():
            self.bytes_by_peer[peer] = self.bytes_by_peer.get(peer, 0) + n
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
