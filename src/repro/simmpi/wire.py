"""The wire format: typed binary codecs for every protocol payload.

Real MPI moves serialized buffers across shared-nothing address spaces;
this module gives the simulated runtime the same discipline.  Every send
is encoded into a self-describing binary **frame** at the communicator
boundary, whatever engine carries it:

* the in-memory engines decode the frame on deposit, so delivery is a
  deep copy — a receiver can never alias (and mutate) a sender's arrays;
* the process engine ships the frame bytes over a pipe/queue unchanged;
* :class:`~repro.simmpi.instrument.CommStats` records ``len(frame)``,
  making the performance model's "measured traffic" ledger exact instead
  of the old 8-bytes-per-object estimate.

Frame layout (all integers little-endian)::

    offset  size  field
    0       1     magic (0xC5)
    1       1     wire-format version (1)
    2       4     source rank (int32)
    6       8     tag (int64)
    14      ...   payload encoding (see below)

The payload encoding is a one-byte type code followed by type-specific
data, applied recursively for containers:

    ======== ===========================================================
    code     encoding
    ======== ===========================================================
    NONE     nothing
    TRUE     nothing
    FALSE    nothing
    INT64    8-byte signed integer
    BIGINT   u32 length + two's-complement little-endian bytes
    FLOAT64  8-byte IEEE double
    STR      u32 length + UTF-8 bytes
    BYTES    u32 length + raw bytes
    NDARRAY  u8 dtype-string length + dtype string (``numpy.dtype.str``)
             + u8 ndim + ndim x u64 shape + C-order raw bytes
    SCALAR   u8 dtype-string length + dtype string + raw item bytes
             (a numpy scalar, e.g. ``np.uint64(7)``)
    TUPLE    u32 count + encoded items
    LIST     u32 count + encoded items
    PICKLE   u32 length + pickle bytes (fallback for payloads with no
             typed encoding; exact in length, flagged by lint MPI006)
    ======== ===========================================================

Numpy arrays round-trip exactly: dtype, shape and values are preserved
(C order; memory layout flags are not).  Tuples stay tuples and lists
stay lists.  Dicts, sets and arbitrary objects have no typed encoding
and travel as PICKLE frames — legal, exactly accounted, but flagged by
the MPI006 lint rule because a production MPI port would have to design
a real encoding for them.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

from repro.errors import WireFormatError
from repro.simmpi.message import Message

#: First byte of every frame; catches accidental non-frame deposits.
MAGIC = 0xC5
#: Wire-format version (bumped on any layout change).
VERSION = 1

#: Frames larger than this are refused at encode time — a guard against
#: runaway payloads, far above anything the protocol legitimately sends.
MAX_FRAME_BYTES = 1 << 31

_HEADER = struct.Struct("<BBiq")
#: Encoded size of the frame header (magic, version, source, tag).
HEADER_BYTES = _HEADER.size

# Payload type codes.
_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT64 = 0x03
_BIGINT = 0x04
_FLOAT64 = 0x05
_STR = 0x06
_BYTES = 0x07
_NDARRAY = 0x08
_SCALAR = 0x09
_TUPLE = 0x0A
_LIST = 0x0B
_PICKLE = 0x7F

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: numpy dtype kinds with a typed array encoding (bool, int, uint,
#: float, complex, fixed bytes, fixed unicode).  Object/void/datetime
#: arrays fall back to PICKLE.
_ARRAY_KINDS = frozenset("biufcSU")


class _NotWireCodable(Exception):
    """Internal: the value needs the PICKLE fallback."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_value(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(_NONE)
    elif obj is True:
        out.append(_TRUE)
    elif obj is False:
        out.append(_FALSE)
    elif isinstance(obj, np.ndarray):
        if obj.dtype.kind not in _ARRAY_KINDS:
            raise _NotWireCodable(f"ndarray dtype {obj.dtype}")
        dt = obj.dtype.str.encode("ascii")
        out.append(_NDARRAY)
        out.append(len(dt))
        out += dt
        out.append(obj.ndim)
        for dim in obj.shape:
            out += _U64.pack(dim)
        out += np.ascontiguousarray(obj).tobytes()
    elif isinstance(obj, np.generic):
        # Checked before the builtin branches: np.float64 subclasses
        # float (and np.complex128 subclasses complex), but must keep
        # its numpy type across the wire.
        arr = np.asarray(obj)
        if arr.dtype.kind not in _ARRAY_KINDS:
            raise _NotWireCodable(f"numpy scalar dtype {arr.dtype}")
        dt = arr.dtype.str.encode("ascii")
        out.append(_SCALAR)
        out.append(len(dt))
        out += dt
        out += arr.tobytes()
    elif isinstance(obj, int) and not isinstance(obj, bool):
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_INT64)
            out += _I64.pack(obj)
        else:
            raw = obj.to_bytes(
                (obj.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(obj, float):
        out.append(_FLOAT64)
        out += _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_BYTES)
        out += _U32.pack(len(obj))
        out += obj
    elif isinstance(obj, (tuple, list)):
        out.append(_TUPLE if isinstance(obj, tuple) else _LIST)
        out += _U32.pack(len(obj))
        for item in obj:
            _encode_value(item, out)
    else:
        raise _NotWireCodable(type(obj).__name__)


def encode_payload(payload: Any) -> bytes:
    """Encode one payload; typed when possible, PICKLE fallback otherwise.

    The fallback keeps every payload sendable (and its byte accounting
    exact) while the MPI006 lint rule steers call-sites toward typed
    payloads.
    """
    out = bytearray()
    try:
        _encode_value(payload, out)
    except _NotWireCodable:
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        out = bytearray()
        out.append(_PICKLE)
        out += _U32.pack(len(raw))
        out += raw
    if len(out) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"payload encodes to {len(out)} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return bytes(out)


def is_wire_codable(payload: Any) -> bool:
    """True when the payload has a typed encoding (no PICKLE fallback)."""
    try:
        _encode_value(payload, bytearray())
    except _NotWireCodable:
        return False
    return True


def encode_frame(source: int, tag: int, payload: Any) -> bytes:
    """One complete frame: header (source, tag) plus encoded payload."""
    return _HEADER.pack(MAGIC, VERSION, source, tag) + encode_payload(payload)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
class _Reader:
    __slots__ = ("buf", "at")

    def __init__(self, buf: bytes, at: int = 0) -> None:
        self.buf = buf
        self.at = at

    def take(self, n: int) -> memoryview:
        end = self.at + n
        if end > len(self.buf):
            raise WireFormatError(
                f"truncated frame: wanted {n} bytes at offset {self.at}, "
                f"frame has {len(self.buf)}"
            )
        view = memoryview(self.buf)[self.at:end]
        self.at = end
        return view

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]


def _decode_value(r: _Reader) -> Any:
    code = r.u8()
    if code == _NONE:
        return None
    if code == _TRUE:
        return True
    if code == _FALSE:
        return False
    if code == _INT64:
        return _I64.unpack(r.take(8))[0]
    if code == _BIGINT:
        return int.from_bytes(r.take(r.u32()), "little", signed=True)
    if code == _FLOAT64:
        return _F64.unpack(r.take(8))[0]
    if code == _STR:
        return str(r.take(r.u32()), "utf-8")
    if code == _BYTES:
        return bytes(r.take(r.u32()))
    if code == _NDARRAY:
        dtype = np.dtype(str(r.take(r.u8()), "ascii"))
        shape = tuple(r.u64() for _ in range(r.u8()))
        count = 1
        for dim in shape:
            count *= dim
        raw = r.take(count * dtype.itemsize)
        # frombuffer gives a read-only view of the frame; copy so the
        # receiver owns a writable array with no tie to the frame bytes.
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if code == _SCALAR:
        dtype = np.dtype(str(r.take(r.u8()), "ascii"))
        return np.frombuffer(r.take(dtype.itemsize), dtype=dtype)[0]
    if code in (_TUPLE, _LIST):
        n = r.u32()
        items = [_decode_value(r) for _ in range(n)]
        return tuple(items) if code == _TUPLE else items
    if code == _PICKLE:
        return pickle.loads(r.take(r.u32()))
    raise WireFormatError(f"unknown payload type code 0x{code:02x}")


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    r = _Reader(data)
    value = _decode_value(r)
    if r.at != len(data):
        raise WireFormatError(
            f"{len(data) - r.at} trailing byte(s) after payload"
        )
    return value


def frame_header(frame: bytes) -> tuple[int, int]:
    """A frame's (source, tag) without decoding the payload."""
    if len(frame) < HEADER_BYTES:
        raise WireFormatError(
            f"frame of {len(frame)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    magic, version, source, tag = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic 0x{magic:02x}")
    if version != VERSION:
        raise WireFormatError(f"unsupported wire-format version {version}")
    return source, tag


def decode_frame(frame: bytes) -> Message:
    """Decode one frame into a delivered :class:`Message`."""
    source, tag = frame_header(frame)
    r = _Reader(frame, at=HEADER_BYTES)
    payload = _decode_value(r)
    if r.at != len(frame):
        raise WireFormatError(
            f"{len(frame) - r.at} trailing byte(s) after payload"
        )
    return Message(source=source, tag=tag, payload=payload)


def clone(payload: Any) -> Any:
    """A deep copy with exact send/receive semantics (encode + decode).

    Used for self-deliveries (a rank's own alltoallv chunk), which never
    cross an engine but must behave as if they had.
    """
    return decode_payload(encode_payload(payload))
