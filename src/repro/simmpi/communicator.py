"""The per-rank communicator: tagged p2p plus MPI-style collectives.

All collectives are built on the engine's point-to-point layer with
reserved tags.  Each collective call consumes one *generation* number per
rank; SPMD programs invoke collectives in the same order on every rank
(the MPI contract), so generations line up and messages from different
collectives can never cross-match even when buffered out of order.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import CommunicatorError, RankMismatchError
from repro.simmpi import wire
from repro.simmpi.instrument import CommStats
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, Tags


class Communicator:
    """One rank's endpoint in an SPMD run (cf. ``MPI_COMM_WORLD``)."""

    def __init__(self, world, rank: int, engine) -> None:
        self._world = world
        self._engine = engine
        self._rank = rank
        self._generation = 0
        # Armed only when a FaultPlan is active; cached so the fault-free
        # send path pays exactly one `is not None` check.
        self._injector = getattr(world, "injector", None)

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank in [0, size)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the run."""
        return self._world.nranks

    @property
    def stats(self) -> CommStats:
        """This rank's :class:`~repro.simmpi.instrument.CommStats`."""
        stats: CommStats = self._world.stats[self._rank]
        return stats

    @property
    def fault_plan(self):
        """The active :class:`~repro.faults.FaultPlan`, or None."""
        return getattr(self._world, "fault_plan", None)

    @property
    def fault_injector(self):
        """The active :class:`~repro.faults.FaultInjector`, or None."""
        return self._injector

    @property
    def probe_yields(self) -> bool:
        """True when an empty probe yields the rank's turn (cooperative
        engine), so resilient retry loops need no wall-clock sleeps."""
        return getattr(self._engine, "PROBE_YIELDS", False)

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest`` under ``tag`` (non-blocking).

        The payload is encoded to a wire frame here, at the communicator
        boundary: the receiver always gets an independent deep copy
        (copy-on-send, on every engine), and the stats ledger records
        the frame's exact encoded length.  Self-sends are legal (the
        message lands in this rank's own mailbox).
        """
        self._check_peer(dest)
        if tag < 0:
            raise CommunicatorError(f"tag must be non-negative, got {tag}")
        if self._injector is not None:
            self._injector.at_event(self._rank)
        frame = wire.encode_frame(self._rank, tag, payload)
        self.stats.record_send(tag, payload, dest=dest, nbytes=len(frame))
        self._engine.deposit(self._world, self._rank, dest, frame)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message:
        """Block until a matching message arrives; remove and return it."""
        return self._engine.wait_message(self._world, self._rank, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Message | None:
        """Non-blocking probe: the first matching message, left in place.

        Mirrors ``MPI_Iprobe`` — the universal heuristic exists precisely to
        avoid this call, so the driver uses it only in non-universal mode.
        """
        return self._engine.probe(self._world, self._rank, source, tag)

    def isend(self, dest: int, payload: Any, tag: int = 0):
        """Nonblocking send; completes at issue (sends are buffered)."""
        from repro.simmpi.request import SendRequest

        self.send(dest, payload, tag=tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Post a nonblocking receive; returns a testable/waitable request."""
        from repro.simmpi.request import RecvRequest

        return RecvRequest(self, source, tag)

    def split(self, color: int):
        """Partition the world by ``color`` (cf. ``MPI_Comm_split``).

        Collective.  Returns this rank's group as a
        :class:`~repro.simmpi.subcomm.SubCommunicator` with dense local
        ranks in world-rank order.
        """
        from repro.simmpi.subcomm import split as _split

        return _split(self, color)

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommunicatorError(
                f"peer rank {peer} out of range for size {self.size}"
            )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _next_tag(self) -> int:
        tag = Tags.COLLECTIVE_BASE + self._generation
        self._generation += 1
        return tag

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        tag = self._next_tag()
        if self._rank == 0:
            for _ in range(self.size - 1):
                self.recv(source=ANY_SOURCE, tag=tag)
            for dest in range(1, self.size):
                self.send(dest, None, tag=tag)
        else:
            self.send(0, None, tag=tag)
            self.recv(source=0, tag=tag)

    def alltoallv(self, chunks: Sequence[Any]) -> list[Any]:
        """Exchange one chunk with every rank (cf. ``MPI_Alltoallv``).

        ``chunks[d]`` goes to rank ``d``; the result's element ``s`` is the
        chunk rank ``s`` addressed to this rank.  Chunks are typically
        numpy arrays but any payload works.
        """
        if len(chunks) != self.size:
            raise RankMismatchError(
                f"alltoallv needs exactly {self.size} chunks, got {len(chunks)}"
            )
        tag = self._next_tag()
        out: list[Any] = [None] * self.size
        for dest in range(self.size):
            if dest == self._rank:
                # Self-delivery never crosses an engine but must behave
                # as if it had: a wire round-trip is the exact semantics.
                out[dest] = wire.clone(chunks[dest])
            else:
                self.send(dest, chunks[dest], tag=tag)
        for _ in range(self.size - 1):
            msg = self.recv(source=ANY_SOURCE, tag=tag)
            out[msg.source] = msg.payload
        return out

    def allgather(self, value: Any) -> list[Any]:
        """Every rank's ``value``, indexed by rank (cf. ``MPI_Allgatherv``)."""
        return self.alltoallv([value] * self.size)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Collect every rank's value at ``root`` (None elsewhere)."""
        self._check_peer(root)
        tag = self._next_tag()
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = value
            for _ in range(self.size - 1):
                msg = self.recv(source=ANY_SOURCE, tag=tag)
                out[msg.source] = msg.payload
            return out
        self.send(root, value, tag=tag)
        return None

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Root's value on every rank."""
        self._check_peer(root)
        tag = self._next_tag()
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(dest, value, tag=tag)
            return value
        return self.recv(source=root, tag=tag).payload

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
    ) -> Any | None:
        """Fold every rank's value at ``root`` (cf. ``MPI_Reduce``)."""
        gathered = self.gather(value, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Any:
        """Fold every rank's value, result on all ranks."""
        reduced = self.reduce(value, op=op, root=0)
        return self.bcast(reduced, root=0)
