"""Message envelope and tag space.

User code may use any tag in ``[0, Tags.COLLECTIVE_BASE)``; tags at and
above ``COLLECTIVE_BASE`` are reserved for the collectives implemented in
:mod:`repro.simmpi.communicator` (each collective call consumes one
generation number so concurrent-in-flight collectives never cross-match).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Wildcard source for recv/iprobe (matches MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for recv/iprobe (matches MPI_ANY_TAG).
ANY_TAG = -1


class Tags:
    """Well-known tags used by the distributed Reptile protocol."""

    #: Request for k-mer counts (payload: uint64 ids).
    KMER_REQUEST = 1
    #: Request for tile counts (payload: uint64 ids).
    TILE_REQUEST = 2
    #: Response to a count request (payload: uint32 counts).
    COUNT_RESPONSE = 3
    #: Universal-mode request; the kind is encoded in the payload.
    UNIVERSAL_REQUEST = 4
    #: A rank announcing it finished its own reads (to rank 0).
    WORKER_DONE = 5
    #: Rank 0 announcing the whole correction phase is over.
    SHUTDOWN = 6
    #: Bulk prefetch request: one coalesced message per owning rank
    #: carrying a request id plus deduplicated k-mer AND tile ids
    #: (payload: uint64 ``[req_id, n_kmer, kmer_ids..., tile_ids...]``).
    PREFETCH_REQUEST = 7
    #: Response to a bulk prefetch (payload: uint32
    #: ``[req_id, kmer_counts..., tile_counts...]``).
    PREFETCH_RESPONSE = 8
    #: Fault-mode count request (payload: uint64
    #: ``[seq, owner, kind, ids...]``): carries a sequence number so
    #: retransmits and stale responses are unambiguous, and the *true*
    #: owner of the ids so a partner rank can answer for its dead ward.
    RESILIENT_REQUEST = 9
    #: Response to a resilient request (payload: uint32
    #: ``[seq, owner, counts...]`` — seq/owner echoed from the request).
    RESILIENT_RESPONSE = 10
    #: Fault-mode Step III read-tables query (payload: uint64
    #: ``[seq, keys...]``) — the point-to-point replacement for the
    #: query alltoallv of ``fetch_global_counts``.
    EXCHANGE_QUERY = 11
    #: Answer to an exchange query (payload: uint64 ``[seq, counts...]``).
    EXCHANGE_ANSWER = 12
    #: A rank telling rank 0 all its exchange queries are answered.
    EXCHANGE_DONE = 13
    #: Rank 0 releasing every rank from the exchange serving loop.
    EXCHANGE_RELEASE = 14
    #: Replica transfer from a doomed rank to its recovery partner
    #: (reliable: never subject to frame faults).
    REPLICA = 15

    #: First tag reserved for collectives; user tags must stay below.
    COLLECTIVE_BASE = 1 << 20


@dataclass(frozen=True)
class Message:
    """A delivered message."""

    source: int
    tag: int
    payload: Any

    def matches(self, source: int, tag: int) -> bool:
        """Does this message match a (source, tag) pattern with wildcards?"""
        return (source in (ANY_SOURCE, self.source)) and (
            tag in (ANY_TAG, self.tag)
        )
