"""Nonblocking point-to-point operations (``MPI_Isend``/``MPI_Irecv``).

The runtime's sends are already asynchronous, so :meth:`Communicator.isend`
is satisfaction-at-issue; :meth:`Communicator.irecv` returns a
:class:`RecvRequest` that can be tested without blocking and waited on
later — the idiom overlapping communication with computation, which the
paper's correction loop relies on implicitly and explicit SPMD programs
can now use directly.

``waitall`` completes a batch in the order messages arrive, so a program
can post many receives and drain them as they land.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.simmpi.message import Message


class Request:
    """Handle for a nonblocking operation."""

    def test(self) -> Message | None:
        """Complete without blocking if possible; None when not ready."""
        raise NotImplementedError

    def wait(self) -> Message | None:
        """Block until the operation completes."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        raise NotImplementedError


class SendRequest(Request):
    """A send: complete at issue (the runtime buffers every message)."""

    __slots__ = ()

    def test(self) -> None:
        """Already complete; sends carry no message."""
        return None

    def wait(self) -> None:
        """Already complete; sends carry no message."""
        return None

    @property
    def completed(self) -> bool:
        return True


class RecvRequest(Request):
    """A posted receive for a (source, tag) pattern."""

    __slots__ = ("_comm", "_source", "_tag", "_message")

    def __init__(self, comm, source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._message: Message | None = None

    @property
    def completed(self) -> bool:
        return self._message is not None

    def test(self) -> Message | None:
        """Try to complete: non-blocking probe + receive on a match."""
        if self._message is not None:
            return self._message
        probed = self._comm.iprobe(self._source, self._tag)
        if probed is None:
            return None
        self._message = self._comm.recv(probed.source, probed.tag)
        return self._message

    def wait(self) -> Message:
        """Blocking completion."""
        if self._message is None:
            self._message = self._comm.recv(self._source, self._tag)
        return self._message


def waitall(requests: Iterable[Request]) -> list[Any]:
    """Complete every request; returns their messages (None for sends).

    Receives complete in arrival order: pending ones are polled round
    robin, falling back to a blocking wait on the first still-pending
    request when a full polling pass makes no progress (which cannot
    deadlock: its message is already owed).
    """
    requests = list(requests)
    results: list[Any] = [None] * len(requests)
    pending = [i for i, r in enumerate(requests) if not r.completed]
    for i, r in enumerate(requests):
        if r.completed:
            results[i] = r.test()
    while pending:
        progressed = False
        for i in list(pending):
            msg = requests[i].test()
            if msg is not None or requests[i].completed:
                results[i] = msg
                pending.remove(i)
                progressed = True
        if pending and not progressed:
            i = pending.pop(0)
            results[i] = requests[i].wait()
    return results
