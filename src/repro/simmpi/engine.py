"""Execution engines: how SPMD ranks are scheduled.

Delivery itself lives one layer down, in :mod:`repro.simmpi.transport`:
every engine receives *encoded wire frames* from the communicator and
hands them to a transport, so copy-on-send and exact byte accounting
hold identically everywhere.  The engines differ only in scheduling:

* :class:`CooperativeEngine` — exactly one rank runs at a time, and control
  switches only at communication points (blocking receive, probe-yield,
  rank completion).  Given the same program and inputs, every run executes
  the same interleaving: fully deterministic, and Python objects shared
  between ranks need no locking.  Deadlocks are *detected* (no runnable
  rank, someone waiting) and reported as :class:`DeadlockError` instead of
  hanging.

* :class:`ThreadedEngine` — ranks run freely on threads of one process
  and block on condition variables; this exercises the paper's
  two-threads-per-rank correction design under real concurrency.
  Blocking receives take a timeout so an accidental deadlock surfaces as
  an error.

* :class:`ProcessEngine` — every rank is a spawned interpreter with
  shared-nothing state; frames cross real process boundaries over the
  :class:`~repro.simmpi.transport.ProcessTransport`.  This is the
  closest analogue of the paper's MPI deployment and the only engine
  that scales past the GIL.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CommunicatorError, DeadlockError
from repro.simmpi.instrument import CommStats
from repro.simmpi.message import Message
from repro.simmpi.transport import LocalTransport, process_rank_main


class _World:
    """State shared by all ranks of one in-memory SPMD run."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.transport = LocalTransport(nranks)
        self.stats: list[CommStats] = [CommStats() for _ in range(nranks)]
        self.error: BaseException | None = None
        self.lock = threading.RLock()
        #: Optional :class:`~repro.analysis.verifier.RuntimeVerifier`;
        #: attached by ``run_spmd(..., verify=True)``.
        self.verifier = None
        #: Optional :class:`~repro.faults.FaultPlan` /
        #: :class:`~repro.faults.FaultInjector`; attached by
        #: ``run_spmd(..., faults=plan)``.  ``None`` on fault-free runs,
        #: keeping the hot path a single attribute check.
        self.fault_plan = None
        self.injector = None

    @property
    def mailboxes(self) -> list[deque[Message]]:
        """The transport's per-rank decoded-message queues (the verifier
        and white-box tests inspect these directly)."""
        return self.transport.boxes

    def fail(self, error: BaseException) -> None:
        """Record the run's first error (caller holds the lock)."""
        if self.error is None:
            self.error = error

    def find_message(self, rank: int, source: int, tag: int, remove: bool) -> Message | None:
        """First matching message in ``rank``'s mailbox (caller holds lock)."""
        return self.transport.poll(rank, source, tag, remove)


class Engine:
    """Interface all engines implement (see module docstring)."""

    def create_world(self, nranks: int) -> _World:
        raise NotImplementedError

    def deposit(self, world: _World, rank: int, dest: int, frame: bytes) -> None:
        """Deliver an encoded frame into ``dest``'s mailbox (called by ``rank``)."""
        raise NotImplementedError

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Block ``rank`` until a matching message arrives; remove it."""
        raise NotImplementedError

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek; may yield control to let senders progress."""
        raise NotImplementedError

    def run(self, fn: Callable[[Any], Any], world: _World,
            make_comm: Callable[[_World, int], Any]) -> list[Any]:
        """Execute ``fn(comm)`` on every rank; returns per-rank results."""
        raise NotImplementedError

    def attach_faults(self, world: _World, plan) -> None:
        """Arm a :class:`~repro.faults.FaultPlan` on this world.

        In-memory engines build the injector and wrap the transport here
        (wiring their own wake-up hook for delayed frames); the process
        engine ships the plan to each child instead, which builds its
        private injector in ``process_rank_main``.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Cooperative (deterministic) engine
# ----------------------------------------------------------------------
class _CoopState:
    """Scheduler bookkeeping attached to a cooperative world."""

    def __init__(self, nranks: int) -> None:
        self.events = [threading.Event() for _ in range(nranks)]
        self.runnable: deque[int] = deque()
        # rank -> (source, tag) it blocks on; only set while waiting.
        self.waiting: dict[int, tuple[int, int]] = {}
        self.finished: set[int] = set()
        self.current: int | None = None


class CooperativeEngine(Engine):
    """Deterministic turn-taking engine (the default for tests/benchmarks)."""

    #: A probe miss yields one scheduler turn, so resilient spin loops
    #: make progress without sleeping (read by Communicator.probe_yields).
    PROBE_YIELDS = True

    def create_world(self, nranks: int) -> _World:
        """World plus the cooperative scheduler state."""
        world = _World(nranks)
        world.coop = _CoopState(nranks)  # type: ignore[attr-defined]
        return world

    def attach_faults(self, world: _World, plan) -> None:
        """Wrap the transport; delayed-frame flushes re-arm receivers."""
        from repro.faults import FaultInjector, FaultyTransport

        injector = FaultInjector(plan, world.nranks, stats=world.stats)
        transport = FaultyTransport(world.transport, injector)
        st: _CoopState = world.coop  # type: ignore[attr-defined]

        def on_deliver(dest: int, msg: Message) -> None:
            # Caller already holds world.lock (flushes happen inside
            # deposit/poll): same re-arm as a direct deposit.
            pattern = st.waiting.get(dest)
            if msg is not None and pattern is not None and msg.matches(*pattern):
                del st.waiting[dest]
                st.runnable.append(dest)

        transport.on_deliver = on_deliver
        world.fault_plan = plan
        world.injector = injector
        world.transport = transport

    # -- scheduling core (callers hold world.lock) ----------------------
    def _schedule_next(self, world: _World) -> None:
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        if st.runnable:
            nxt = st.runnable.popleft()
            st.current = nxt
            st.events[nxt].set()
            return
        st.current = None
        live_waiting = set(st.waiting) - st.finished
        if live_waiting:
            # Nobody can run and someone is blocked: deadlock.  Keep the
            # first diagnosis — teardown re-entries would otherwise
            # overwrite it with a shrinking rank list.
            from repro.faults import describe_faults

            world.fail(DeadlockError.from_blocked(
                {r: st.waiting[r] for r in live_waiting},
                detail="all runnable ranks exhausted with no matching "
                       "messages in flight",
                faults=describe_faults(world),
            ))
            for r in live_waiting:
                st.events[r].set()

    def _yield_and_wait(self, world: _World, rank: int) -> None:
        """Give up the CPU; return when scheduled again (lock held on entry
        and re-acquired before returning)."""
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        st.events[rank].clear()
        self._schedule_next(world)
        world.lock.release()
        try:
            st.events[rank].wait()
        finally:
            world.lock.acquire()
        if world.error is not None:
            raise world.error

    # -- Engine interface ----------------------------------------------
    def deposit(self, world: _World, rank: int, dest: int, frame: bytes) -> None:
        """Decode and deliver a frame; re-arm a waiting destination."""
        with world.lock:
            if world.error is not None:
                raise world.error
            # enqueue returns None when a fault injector swallowed the
            # frame (dropped / corrupted / delayed): nothing to match.
            msg = world.transport.enqueue(dest, frame)
            st: _CoopState = world.coop  # type: ignore[attr-defined]
            pattern = st.waiting.get(dest)
            if msg is not None and pattern is not None and msg.matches(*pattern):
                del st.waiting[dest]
                st.runnable.append(dest)

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Blocking receive: park the rank and hand the CPU over."""
        with world.lock:
            while True:
                if world.error is not None:
                    raise world.error
                msg = world.find_message(rank, source, tag, remove=True)
                if msg is not None:
                    if world.verifier is not None:
                        world.verifier.end_wait(rank)
                    return msg
                st: _CoopState = world.coop  # type: ignore[attr-defined]
                st.waiting[rank] = (source, tag)
                if world.verifier is not None:
                    err = world.verifier.begin_wait(rank, source, tag)
                    if err is not None:
                        world.fail(err)
                        for r in range(world.nranks):
                            st.events[r].set()
                        raise world.error
                st.events[rank].clear()
                self._schedule_next(world)
                world.lock.release()
                try:
                    st.events[rank].wait()
                finally:
                    world.lock.acquire()
                st.current = rank
                if world.error is not None:
                    raise world.error

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek; yields one turn on a miss (progress)."""
        with world.lock:
            if world.error is not None:
                raise world.error
            msg = world.find_message(rank, source, tag, remove=False)
            if msg is not None:
                return msg
            # Nothing there: yield one turn so producers can run, then
            # re-check once.  Spin loops thus make progress round-robin.
            st: _CoopState = world.coop  # type: ignore[attr-defined]
            st.runnable.append(rank)
            self._yield_and_wait(world, rank)
            st.current = rank
            return world.find_message(rank, source, tag, remove=False)

    def run(self, fn, world: _World, make_comm) -> list[Any]:
        """Launch all rank threads; rank 0 runs first; join and report."""
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        n = world.nranks
        results: list[Any] = [None] * n
        threads: list[threading.Thread] = []

        def body(rank: int) -> None:
            from repro.errors import RankCrashError
            from repro.faults import CrashedRank

            st.events[rank].wait()
            if world.error is not None:
                return
            try:
                results[rank] = fn(make_comm(world, rank))
            except RankCrashError:
                # A scripted crash: this rank is dead, the run goes on —
                # recovery (replay by the partner) happens at the
                # protocol layer, not here.
                results[rank] = CrashedRank(rank)
            except BaseException as exc:  # noqa: BLE001 - repropagated below
                with world.lock:
                    if world.error is None or isinstance(world.error, DeadlockError):
                        world.error = exc
                    for r in range(n):
                        st.events[r].set()
            finally:
                with world.lock:
                    st.finished.add(rank)
                    st.waiting.pop(rank, None)
                    if world.verifier is not None:
                        err = world.verifier.mark_finished(rank)
                        if err is not None:
                            world.fail(err)
                            for r in range(n):
                                st.events[r].set()
                    if st.current == rank:
                        self._schedule_next(world)

        for rank in range(n):
            t = threading.Thread(
                target=body, args=(rank,), name=f"coop-rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        with world.lock:
            st.runnable.extend(range(1, n))
            st.current = 0
            st.events[0].set()
        for t in threads:
            t.join()
        if world.error is not None:
            raise world.error
        return results


# ----------------------------------------------------------------------
# Free-running threaded engine
# ----------------------------------------------------------------------
class ThreadedEngine(Engine):
    """Concurrent engine: ranks are ordinary threads blocking on conditions.

    ``timeout`` bounds every blocking receive; expiry raises
    :class:`DeadlockError` (a real MPI job would hang instead).
    """

    def __init__(self, timeout: float = 120.0) -> None:
        if timeout <= 0:
            raise CommunicatorError("timeout must be positive")
        self.timeout = timeout

    def create_world(self, nranks: int) -> _World:
        """World plus one condition variable per rank mailbox."""
        world = _World(nranks)
        world.conds = [  # type: ignore[attr-defined]
            threading.Condition(world.lock) for _ in range(nranks)
        ]
        return world

    def attach_faults(self, world: _World, plan) -> None:
        """Wrap the transport; delayed-frame flushes notify receivers."""
        from repro.faults import FaultInjector, FaultyTransport

        injector = FaultInjector(plan, world.nranks, stats=world.stats)
        transport = FaultyTransport(world.transport, injector)

        def on_deliver(dest: int, msg: Message) -> None:
            # Caller holds world.lock (the conds share it).
            world.conds[dest].notify_all()  # type: ignore[attr-defined]

        transport.on_deliver = on_deliver
        world.fault_plan = plan
        world.injector = injector
        world.transport = transport

    def deposit(self, world: _World, rank: int, dest: int, frame: bytes) -> None:
        """Decode and deliver a frame; wake any blocked receiver."""
        with world.lock:
            if world.error is not None:
                raise world.error
            world.transport.enqueue(dest, frame)
            world.conds[dest].notify_all()  # type: ignore[attr-defined]

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Blocking receive on a condition variable (with timeout)."""
        cond = world.conds[rank]  # type: ignore[attr-defined]
        with world.lock:
            while True:
                if world.error is not None:
                    raise world.error
                msg = world.find_message(rank, source, tag, remove=True)
                if msg is not None:
                    if world.verifier is not None:
                        world.verifier.end_wait(rank)
                    return msg
                if world.verifier is not None:
                    err = world.verifier.begin_wait(rank, source, tag)
                    if err is not None:
                        world.fail(err)
                        for c in world.conds:  # type: ignore[attr-defined]
                            c.notify_all()
                        raise world.error
                if not cond.wait(timeout=self.timeout):
                    from repro.faults import describe_faults

                    err = DeadlockError.from_blocked(
                        {rank: (source, tag)},
                        detail=f"no matching message within the "
                               f"{self.timeout}s receive timeout",
                        faults=describe_faults(world),
                    )
                    world.fail(err)
                    for c in world.conds:  # type: ignore[attr-defined]
                        c.notify_all()
                    raise err

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek at the mailbox."""
        with world.lock:
            if world.error is not None:
                raise world.error
            return world.find_message(rank, source, tag, remove=False)

    def run(self, fn, world: _World, make_comm) -> list[Any]:
        """Launch all ranks as free threads; join and report."""
        n = world.nranks
        results: list[Any] = [None] * n
        threads: list[threading.Thread] = []

        def body(rank: int) -> None:
            from repro.errors import RankCrashError
            from repro.faults import CrashedRank

            try:
                results[rank] = fn(make_comm(world, rank))
            except RankCrashError:
                # Scripted crash: the rank dies quietly; survivors (and
                # the recovery partner's replay) finish the run.
                results[rank] = CrashedRank(rank)
            except BaseException as exc:  # noqa: BLE001 - repropagated below
                with world.lock:
                    if world.error is None or isinstance(world.error, DeadlockError):
                        world.error = exc
                    for c in world.conds:  # type: ignore[attr-defined]
                        c.notify_all()
            finally:
                with world.lock:
                    if world.verifier is not None:
                        err = world.verifier.mark_finished(rank)
                        if err is not None:
                            world.fail(err)
                            for c in world.conds:  # type: ignore[attr-defined]
                                c.notify_all()

        for rank in range(n):
            t = threading.Thread(
                target=body, args=(rank,), name=f"rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        for t in threads:
            t.join()
        if world.error is not None:
            raise world.error
        return results


# ----------------------------------------------------------------------
# Shared-nothing multiprocessing engine
# ----------------------------------------------------------------------
class ProcessEngine(Engine):
    """One spawned interpreter per rank; frames cross real process
    boundaries (see :class:`~repro.simmpi.transport.ProcessTransport`).

    The rank function must be picklable (a module-level function or a
    picklable callable object — the driver's rank programs are).  Each
    child builds its own world, communicator and stats ledger; the
    parent only distributes the program, collects results and folds the
    children's :class:`CommStats` back into ``world.stats``.

    ``timeout`` bounds every blocking receive inside the children, as on
    the threaded engine; the parent additionally watches for child
    processes dying without reporting (a crash surfaces as
    :class:`CommunicatorError` rather than a hang).
    """

    #: Extra parent-side patience beyond the children's receive timeout.
    _GRACE = 30.0

    def __init__(self, timeout: float = 120.0) -> None:
        if timeout <= 0:
            raise CommunicatorError("timeout must be positive")
        self.timeout = timeout

    def create_world(self, nranks: int) -> _World:
        """A parent-side world: holds ``nranks`` and, after the run, the
        per-rank stats shipped back from the children.  Its transport
        and mailboxes are never used — ranks communicate entirely inside
        their own processes."""
        return _World(nranks)

    def attach_faults(self, world: _World, plan) -> None:
        """Record the plan; each spawned child builds its own injector
        (equivalent decisions — they are content-hash based)."""
        world.fault_plan = plan

    def _no_endpoint(self) -> CommunicatorError:
        return CommunicatorError(
            "the process engine has no parent-side endpoint; "
            "communicators exist only inside the spawned ranks"
        )

    def deposit(self, world: _World, rank: int, dest: int, frame: bytes) -> None:
        """Unavailable in the parent: each spawned rank deposits through
        its own :class:`~repro.simmpi.transport.ProcessTransport`."""
        raise self._no_endpoint()

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Unavailable in the parent (see :meth:`deposit`)."""
        raise self._no_endpoint()

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Unavailable in the parent (see :meth:`deposit`)."""
        raise self._no_endpoint()

    def run(self, fn, world: _World, make_comm) -> list[Any]:
        """Spawn all ranks, collect per-rank results and stats."""
        import multiprocessing as mp
        import pickle

        ctx = mp.get_context("spawn")
        n = world.nranks
        queues = [ctx.Queue() for _ in range(n)]
        result_queue = ctx.Queue()
        procs: list = []
        try:
            for rank in range(n):
                proc = ctx.Process(
                    target=process_rank_main,
                    args=(rank, n, fn, queues, result_queue, self.timeout,
                          world.fault_plan),
                    name=f"proc-rank-{rank}",
                )
                try:
                    proc.start()
                except (pickle.PicklingError, AttributeError, TypeError) as exc:
                    raise CommunicatorError(
                        "the process engine requires a picklable rank "
                        "function (module-level, no closures); pickling "
                        f"failed: {exc}"
                    ) from exc
                procs.append(proc)
            results: list[Any] = [None] * n
            deadline = time.monotonic() + self.timeout + self._GRACE
            pending = n
            while pending:
                try:
                    status = result_queue.get(timeout=1.0)
                except queue_mod.Empty:
                    self._check_children(procs, result_queue, deadline)
                    continue
                kind, rank, value, stats = status
                if kind == "error":
                    raise value
                if kind == "crashed":
                    from repro.faults import CrashedRank

                    value = CrashedRank(rank)
                results[rank] = value
                world.stats[rank] = stats
                pending -= 1
            return results
        finally:
            self._teardown(procs, queues, result_queue)

    def _check_children(self, procs, result_queue, deadline: float) -> None:
        """No result within the poll slice: diagnose dead or hung ranks."""
        dead = [p for p in procs if not p.is_alive() and p.exitcode != 0]
        if dead:
            # A failing child reports before exiting; give that report a
            # moment to surface so the real exception wins over the
            # generic died-without-reporting diagnosis.
            try:
                status = result_queue.get(timeout=2.0)
            except queue_mod.Empty:
                codes = ", ".join(
                    f"{p.name} exit code {p.exitcode}" for p in dead
                )
                raise CommunicatorError(
                    f"rank process(es) died without reporting: {codes}"
                ) from None
            kind, rank, value, _stats = status
            if kind == "error":
                raise value
            # A success slipped in; push it back through the main loop.
            result_queue.put(status)
            return
        if time.monotonic() > deadline:
            raise CommunicatorError(
                f"no rank reported within {self.timeout + self._GRACE}s; "
                "terminating the process world"
            )

    @staticmethod
    def _teardown(procs, queues, result_queue) -> None:
        """Drain, join and reap the process world.

        Draining the data queues first unblocks any child whose queue
        feeder thread is still flushing frames nobody will receive.
        """
        for q in [*queues, result_queue]:
            try:
                while True:
                    q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                pass
        for p in procs:
            p.join(timeout=10.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        for q in [*queues, result_queue]:
            q.close()


# ----------------------------------------------------------------------
@dataclass
class SpmdResult:
    """Return bundle of :func:`run_spmd`."""

    results: list[Any]
    stats: list[CommStats] = field(default_factory=list)

    def total_stats(self) -> CommStats:
        """All ranks' traffic folded together."""
        total = CommStats()
        for s in self.stats:
            total.merge(s)
        return total


def run_spmd(
    fn: Callable[[Any], Any],
    nranks: int,
    engine: Engine | str = "cooperative",
    verify: bool = False,
    faults=None,
) -> SpmdResult:
    """Run ``fn(comm)`` as an SPMD program on ``nranks`` ranks.

    ``engine`` may be an :class:`Engine` instance or one of the names
    ``"cooperative"`` (alias ``"sequential"``), ``"threaded"``, or
    ``"process"``.  With ``verify=True`` the run is instrumented by
    :class:`~repro.analysis.verifier.RuntimeVerifier`: wait-for-graph
    deadlock detection at every blocking receive, and a finalize-time
    audit (undrained mailboxes, unmatched sends, collective generation
    skew) that raises :class:`~repro.errors.VerifierError` after an
    otherwise successful run.  The verifier needs a shared-memory view
    of every mailbox, so it is unavailable on the process engine.

    ``faults`` optionally arms a :class:`~repro.faults.FaultPlan`: the
    engine's transport is wrapped by a
    :class:`~repro.faults.FaultyTransport` (frame faults) and scripted
    crash/stall faults are injected at the communicator's send boundary.
    A rank killed by its CrashFault yields a
    :class:`~repro.faults.CrashedRank` sentinel in ``results`` instead
    of failing the run.  Plans that swallow or reorder frames are
    incompatible with the verifier's mailbox audit, so ``verify=True``
    only combines with stall-only plans.
    Returns per-rank results and the per-rank communication statistics.
    """
    from repro.simmpi.communicator import Communicator

    if nranks < 1:
        raise CommunicatorError("nranks must be >= 1")
    if isinstance(engine, str):
        if engine in ("cooperative", "sequential"):
            engine = CooperativeEngine()
        elif engine == "threaded":
            engine = ThreadedEngine()
        elif engine == "process":
            engine = ProcessEngine()
        else:
            raise CommunicatorError(f"unknown engine {engine!r}")
    if verify and isinstance(engine, ProcessEngine):
        raise CommunicatorError(
            "verify=True needs a shared-memory view of every mailbox and "
            "is not supported on the shared-nothing process engine"
        )
    if faults is not None:
        faults.validate(nranks)
        if verify and not faults.stall_only:
            raise CommunicatorError(
                "verify=True audits that every send is matched, which a "
                "FaultPlan that drops, corrupts, duplicates, delays, or "
                "crashes violates by design; only stall-only plans can be "
                "verified"
            )
    world = engine.create_world(nranks)
    if faults is not None:
        engine.attach_faults(world, faults)
    if verify:
        from repro.analysis.verifier import RuntimeVerifier

        world.verifier = RuntimeVerifier(world)

    def make_comm(w: _World, rank: int) -> Communicator:
        comm = Communicator(w, rank, engine)
        if w.verifier is not None:
            w.verifier.register_comm(comm)
        return comm

    results = engine.run(fn, world, make_comm)
    if world.verifier is not None:
        world.verifier.finalize()
    return SpmdResult(results=results, stats=world.stats)
