"""Execution engines: how SPMD ranks are scheduled.

Both engines run each rank's function on its own Python thread and share
per-rank mailboxes; they differ in scheduling:

* :class:`CooperativeEngine` — exactly one rank runs at a time, and control
  switches only at communication points (blocking receive, probe-yield,
  rank completion).  Given the same program and inputs, every run executes
  the same interleaving: fully deterministic, and Python objects shared
  between ranks need no locking.  Deadlocks are *detected* (no runnable
  rank, someone waiting) and reported as :class:`DeadlockError` instead of
  hanging.

* :class:`ThreadedEngine` — ranks run freely and block on condition
  variables; this exercises the paper's two-threads-per-rank correction
  design under real concurrency.  Blocking receives take a timeout so an
  accidental deadlock surfaces as an error.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CommunicatorError, DeadlockError
from repro.simmpi.instrument import CommStats
from repro.simmpi.message import Message


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.mailboxes: list[deque[Message]] = [deque() for _ in range(nranks)]
        self.stats: list[CommStats] = [CommStats() for _ in range(nranks)]
        self.error: BaseException | None = None
        self.lock = threading.RLock()
        #: Optional :class:`~repro.analysis.verifier.RuntimeVerifier`;
        #: attached by ``run_spmd(..., verify=True)``.
        self.verifier = None

    def fail(self, error: BaseException) -> None:
        """Record the run's first error (caller holds the lock)."""
        if self.error is None:
            self.error = error

    def find_message(self, rank: int, source: int, tag: int, remove: bool) -> Message | None:
        """First matching message in ``rank``'s mailbox (caller holds lock)."""
        box = self.mailboxes[rank]
        for i, msg in enumerate(box):
            if msg.matches(source, tag):
                if remove:
                    del box[i]
                return msg
        return None


class Engine:
    """Interface both engines implement (see module docstring)."""

    def create_world(self, nranks: int) -> _World:
        raise NotImplementedError

    def deposit(self, world: _World, rank: int, dest: int, msg: Message) -> None:
        """Deliver ``msg`` into ``dest``'s mailbox (called by ``rank``)."""
        raise NotImplementedError

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Block ``rank`` until a matching message arrives; remove it."""
        raise NotImplementedError

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek; may yield control to let senders progress."""
        raise NotImplementedError

    def run(self, fn: Callable[[Any], Any], world: _World,
            make_comm: Callable[[_World, int], Any]) -> list[Any]:
        """Execute ``fn(comm)`` on every rank; returns per-rank results."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Cooperative (deterministic) engine
# ----------------------------------------------------------------------
class _CoopState:
    """Scheduler bookkeeping attached to a cooperative world."""

    def __init__(self, nranks: int) -> None:
        self.events = [threading.Event() for _ in range(nranks)]
        self.runnable: deque[int] = deque()
        # rank -> (source, tag) it blocks on; only set while waiting.
        self.waiting: dict[int, tuple[int, int]] = {}
        self.finished: set[int] = set()
        self.current: int | None = None


class CooperativeEngine(Engine):
    """Deterministic turn-taking engine (the default for tests/benchmarks)."""

    def create_world(self, nranks: int) -> _World:
        """World plus the cooperative scheduler state."""
        world = _World(nranks)
        world.coop = _CoopState(nranks)  # type: ignore[attr-defined]
        return world

    # -- scheduling core (callers hold world.lock) ----------------------
    def _schedule_next(self, world: _World) -> None:
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        if st.runnable:
            nxt = st.runnable.popleft()
            st.current = nxt
            st.events[nxt].set()
            return
        st.current = None
        live_waiting = set(st.waiting) - st.finished
        if live_waiting:
            # Nobody can run and someone is blocked: deadlock.  Keep the
            # first diagnosis — teardown re-entries would otherwise
            # overwrite it with a shrinking rank list.
            world.fail(DeadlockError.from_blocked(
                {r: st.waiting[r] for r in live_waiting},
                detail="all runnable ranks exhausted with no matching "
                       "messages in flight",
            ))
            for r in live_waiting:
                st.events[r].set()

    def _yield_and_wait(self, world: _World, rank: int) -> None:
        """Give up the CPU; return when scheduled again (lock held on entry
        and re-acquired before returning)."""
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        st.events[rank].clear()
        self._schedule_next(world)
        world.lock.release()
        try:
            st.events[rank].wait()
        finally:
            world.lock.acquire()
        if world.error is not None:
            raise world.error

    # -- Engine interface ----------------------------------------------
    def deposit(self, world: _World, rank: int, dest: int, msg: Message) -> None:
        """Deliver a message; re-arm the destination if it was waiting."""
        with world.lock:
            if world.error is not None:
                raise world.error
            world.mailboxes[dest].append(msg)
            st: _CoopState = world.coop  # type: ignore[attr-defined]
            pattern = st.waiting.get(dest)
            if pattern is not None and msg.matches(*pattern):
                del st.waiting[dest]
                st.runnable.append(dest)

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Blocking receive: park the rank and hand the CPU over."""
        with world.lock:
            while True:
                if world.error is not None:
                    raise world.error
                msg = world.find_message(rank, source, tag, remove=True)
                if msg is not None:
                    if world.verifier is not None:
                        world.verifier.end_wait(rank)
                    return msg
                st: _CoopState = world.coop  # type: ignore[attr-defined]
                st.waiting[rank] = (source, tag)
                if world.verifier is not None:
                    err = world.verifier.begin_wait(rank, source, tag)
                    if err is not None:
                        world.fail(err)
                        for r in range(world.nranks):
                            st.events[r].set()
                        raise world.error
                st.events[rank].clear()
                self._schedule_next(world)
                world.lock.release()
                try:
                    st.events[rank].wait()
                finally:
                    world.lock.acquire()
                st.current = rank
                if world.error is not None:
                    raise world.error

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek; yields one turn on a miss (progress)."""
        with world.lock:
            if world.error is not None:
                raise world.error
            msg = world.find_message(rank, source, tag, remove=False)
            if msg is not None:
                return msg
            # Nothing there: yield one turn so producers can run, then
            # re-check once.  Spin loops thus make progress round-robin.
            st: _CoopState = world.coop  # type: ignore[attr-defined]
            st.runnable.append(rank)
            self._yield_and_wait(world, rank)
            st.current = rank
            return world.find_message(rank, source, tag, remove=False)

    def run(self, fn, world: _World, make_comm) -> list[Any]:
        """Launch all rank threads; rank 0 runs first; join and report."""
        st: _CoopState = world.coop  # type: ignore[attr-defined]
        n = world.nranks
        results: list[Any] = [None] * n
        threads: list[threading.Thread] = []

        def body(rank: int) -> None:
            st.events[rank].wait()
            if world.error is not None:
                return
            try:
                results[rank] = fn(make_comm(world, rank))
            except BaseException as exc:  # noqa: BLE001 - repropagated below
                with world.lock:
                    if world.error is None or isinstance(world.error, DeadlockError):
                        world.error = exc
                    for r in range(n):
                        st.events[r].set()
            finally:
                with world.lock:
                    st.finished.add(rank)
                    st.waiting.pop(rank, None)
                    if world.verifier is not None:
                        err = world.verifier.mark_finished(rank)
                        if err is not None:
                            world.fail(err)
                            for r in range(n):
                                st.events[r].set()
                    if st.current == rank:
                        self._schedule_next(world)

        for rank in range(n):
            t = threading.Thread(
                target=body, args=(rank,), name=f"coop-rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        with world.lock:
            st.runnable.extend(range(1, n))
            st.current = 0
            st.events[0].set()
        for t in threads:
            t.join()
        if world.error is not None:
            raise world.error
        return results


# ----------------------------------------------------------------------
# Free-running threaded engine
# ----------------------------------------------------------------------
class ThreadedEngine(Engine):
    """Concurrent engine: ranks are ordinary threads blocking on conditions.

    ``timeout`` bounds every blocking receive; expiry raises
    :class:`DeadlockError` (a real MPI job would hang instead).
    """

    def __init__(self, timeout: float = 120.0) -> None:
        if timeout <= 0:
            raise CommunicatorError("timeout must be positive")
        self.timeout = timeout

    def create_world(self, nranks: int) -> _World:
        """World plus one condition variable per rank mailbox."""
        world = _World(nranks)
        world.conds = [  # type: ignore[attr-defined]
            threading.Condition(world.lock) for _ in range(nranks)
        ]
        return world

    def deposit(self, world: _World, rank: int, dest: int, msg: Message) -> None:
        """Deliver a message and wake any blocked receiver."""
        with world.lock:
            if world.error is not None:
                raise world.error
            world.mailboxes[dest].append(msg)
            world.conds[dest].notify_all()  # type: ignore[attr-defined]

    def wait_message(self, world: _World, rank: int, source: int, tag: int) -> Message:
        """Blocking receive on a condition variable (with timeout)."""
        cond = world.conds[rank]  # type: ignore[attr-defined]
        with world.lock:
            while True:
                if world.error is not None:
                    raise world.error
                msg = world.find_message(rank, source, tag, remove=True)
                if msg is not None:
                    if world.verifier is not None:
                        world.verifier.end_wait(rank)
                    return msg
                if world.verifier is not None:
                    err = world.verifier.begin_wait(rank, source, tag)
                    if err is not None:
                        world.fail(err)
                        for c in world.conds:  # type: ignore[attr-defined]
                            c.notify_all()
                        raise world.error
                if not cond.wait(timeout=self.timeout):
                    err = DeadlockError.from_blocked(
                        {rank: (source, tag)},
                        detail=f"no matching message within the "
                               f"{self.timeout}s receive timeout",
                    )
                    world.fail(err)
                    for c in world.conds:  # type: ignore[attr-defined]
                        c.notify_all()
                    raise err

    def probe(self, world: _World, rank: int, source: int, tag: int) -> Message | None:
        """Non-blocking peek at the mailbox."""
        with world.lock:
            if world.error is not None:
                raise world.error
            return world.find_message(rank, source, tag, remove=False)

    def run(self, fn, world: _World, make_comm) -> list[Any]:
        """Launch all ranks as free threads; join and report."""
        n = world.nranks
        results: list[Any] = [None] * n
        threads: list[threading.Thread] = []

        def body(rank: int) -> None:
            try:
                results[rank] = fn(make_comm(world, rank))
            except BaseException as exc:  # noqa: BLE001 - repropagated below
                with world.lock:
                    if world.error is None or isinstance(world.error, DeadlockError):
                        world.error = exc
                    for c in world.conds:  # type: ignore[attr-defined]
                        c.notify_all()
            finally:
                with world.lock:
                    if world.verifier is not None:
                        err = world.verifier.mark_finished(rank)
                        if err is not None:
                            world.fail(err)
                            for c in world.conds:  # type: ignore[attr-defined]
                                c.notify_all()

        for rank in range(n):
            t = threading.Thread(
                target=body, args=(rank,), name=f"rank-{rank}", daemon=True
            )
            threads.append(t)
            t.start()
        for t in threads:
            t.join()
        if world.error is not None:
            raise world.error
        return results


# ----------------------------------------------------------------------
@dataclass
class SpmdResult:
    """Return bundle of :func:`run_spmd`."""

    results: list[Any]
    stats: list[CommStats] = field(default_factory=list)

    def total_stats(self) -> CommStats:
        """All ranks' traffic folded together."""
        total = CommStats()
        for s in self.stats:
            total.merge(s)
        return total


def run_spmd(
    fn: Callable[[Any], Any],
    nranks: int,
    engine: Engine | str = "cooperative",
    verify: bool = False,
) -> SpmdResult:
    """Run ``fn(comm)`` as an SPMD program on ``nranks`` ranks.

    ``engine`` may be an :class:`Engine` instance or one of the names
    ``"cooperative"`` / ``"threaded"``.  With ``verify=True`` the run is
    instrumented by :class:`~repro.analysis.verifier.RuntimeVerifier`:
    wait-for-graph deadlock detection at every blocking receive, and a
    finalize-time audit (undrained mailboxes, unmatched sends,
    collective generation skew) that raises
    :class:`~repro.errors.VerifierError` after an otherwise successful
    run.  Returns per-rank results and the per-rank communication
    statistics.
    """
    from repro.simmpi.communicator import Communicator

    if nranks < 1:
        raise CommunicatorError("nranks must be >= 1")
    if isinstance(engine, str):
        if engine == "cooperative":
            engine = CooperativeEngine()
        elif engine == "threaded":
            engine = ThreadedEngine()
        else:
            raise CommunicatorError(f"unknown engine {engine!r}")
    world = engine.create_world(nranks)
    if verify:
        from repro.analysis.verifier import RuntimeVerifier

        world.verifier = RuntimeVerifier(world)

    def make_comm(w: _World, rank: int) -> Communicator:
        comm = Communicator(w, rank, engine)
        if w.verifier is not None:
            w.verifier.register_comm(comm)
        return comm

    results = engine.run(fn, world, make_comm)
    if world.verifier is not None:
        world.verifier.finalize()
    return SpmdResult(results=results, stats=world.stats)
