"""Transports: how encoded frames move between ranks.

The delivery contract factored out of the engines: a transport accepts
encoded wire frames addressed to a rank (:meth:`Transport.enqueue`) and
answers (source, tag)-pattern queries against that rank's pending
messages (:meth:`Transport.poll`).  Scheduling — who runs, how a rank
blocks when its poll comes up empty — stays with the engines.

Two implementations:

* :class:`LocalTransport` — one decoded-message deque per rank in shared
  memory, used by both in-memory engines (the sequential/cooperative
  scheduler and the free-threaded one).  Frames are decoded on enqueue,
  so delivery is a deep copy and the caller's engine can match against
  :class:`~repro.simmpi.message.Message` objects directly.  Callers
  synchronize with the world lock.
* :class:`ProcessTransport` — the shared-nothing transport behind the
  process engine.  Every rank lives in its own spawned interpreter; a
  frame travels as bytes over the destination's multiprocessing queue
  and is decoded into the destination's private inbox when that rank
  next polls or blocks.

This module also hosts the process engine's per-rank machinery (the
world object, the engine endpoint and the child main function) because
the spawned interpreter imports it by module path.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import threading
import time
import traceback
from collections import deque

from repro.errors import CommunicatorError, DeadlockError
from repro.simmpi import wire
from repro.simmpi.instrument import CommStats
from repro.simmpi.message import Message

#: How long a process-engine drain sleeps per queue poll; short enough
#: that a frame drained by a sibling thread is noticed promptly.
_DRAIN_SLICE = 0.05


class Transport:
    """Delivery contract shared by every engine (see module docstring)."""

    def enqueue(self, dest: int, frame: bytes) -> Message:
        """Deliver an encoded frame to ``dest``; returns the decoded
        message when the transport decodes eagerly (local delivery)."""
        raise NotImplementedError

    def poll(self, rank: int, source: int, tag: int,
             remove: bool) -> Message | None:
        """First pending message for ``rank`` matching the pattern."""
        raise NotImplementedError


class LocalTransport(Transport):
    """Shared-memory frame delivery: one message deque per rank.

    Thread safety is the caller's: the in-memory engines invoke every
    method while holding the world lock.
    """

    def __init__(self, nranks: int) -> None:
        self.boxes: list[deque[Message]] = [deque() for _ in range(nranks)]

    def enqueue(self, dest: int, frame: bytes) -> Message:
        """Decode the frame (the copy-on-send boundary) and queue it."""
        msg = wire.decode_frame(frame)
        self.boxes[dest].append(msg)
        return msg

    def poll(self, rank: int, source: int, tag: int,
             remove: bool) -> Message | None:
        """First queued message for ``rank`` matching (source, tag)."""
        box = self.boxes[rank]
        for i, msg in enumerate(box):
            if msg.matches(source, tag):
                if remove:
                    del box[i]
                return msg
        return None


class ProcessTransport(Transport):
    """Frames over multiprocessing queues; decoded into a private inbox.

    One instance lives inside each spawned rank.  ``queues[d]`` is rank
    ``d``'s delivery queue; sending is a queue put of the raw frame
    bytes, receiving drains this rank's own queue into ``inbox``.  The
    inbox lock makes the transport safe for the two-thread Step IV mode
    (worker and communication thread of one rank share the inbox).
    """

    def __init__(self, queues, rank: int) -> None:
        self.queues = queues
        self.rank = rank
        self.inbox: deque[Message] = deque()
        self.lock = threading.Lock()

    def enqueue(self, dest: int, frame: bytes) -> None:
        """Put the raw frame bytes on the destination rank's queue."""
        self.queues[dest].put(frame)

    def poll(self, rank: int, source: int, tag: int,
             remove: bool) -> Message | None:
        """First inbox message matching (source, tag); own rank only."""
        if rank != self.rank:
            raise CommunicatorError(
                f"process transport of rank {self.rank} polled for {rank}"
            )
        with self.lock:
            for i, msg in enumerate(self.inbox):
                if msg.matches(source, tag):
                    if remove:
                        del self.inbox[i]
                    return msg
        return None

    def drain(self, block: bool = False) -> bool:
        """Move arrived frames from the queue into the inbox.

        Non-blocking by default; with ``block=True`` waits up to one
        drain slice for the first frame.  Returns True if anything
        arrived.
        """
        got = False
        while True:
            try:
                frame = self.queues[self.rank].get(
                    timeout=_DRAIN_SLICE if (block and not got) else 0
                )
            except queue_mod.Empty:
                return got
            with self.lock:
                self.inbox.append(wire.decode_frame(frame))
            got = True


# ----------------------------------------------------------------------
# process-engine per-rank runtime (imported by the spawned interpreter)
# ----------------------------------------------------------------------
class _ProcessWorld:
    """One spawned rank's private world: shared-nothing by construction.

    Mirrors the attribute surface the communicator needs (``nranks``,
    ``stats``, ``verifier``); only this rank's entry in ``stats`` is
    ever touched.
    """

    def __init__(self, nranks: int, rank: int,
                 transport: ProcessTransport) -> None:
        self.nranks = nranks
        self.rank = rank
        self.transport = transport
        self.stats = [CommStats() for _ in range(nranks)]
        self.verifier = None
        self.fault_plan = None
        self.injector = None

    def find_message(self, rank: int, source: int, tag: int,
                     remove: bool) -> Message | None:
        return self.transport.poll(rank, source, tag, remove)


class _ProcessEndpoint:
    """Engine-side of a spawned rank: blocking semantics over the queue.

    Implements the same deposit/wait/probe surface the in-memory engines
    give the communicator, with the threaded engine's discipline: every
    blocking receive carries a timeout, and expiry raises
    :class:`DeadlockError` instead of hanging the process tree.
    """

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout

    def deposit(self, world: _ProcessWorld, rank: int, dest: int,
                frame: bytes) -> None:
        world.transport.enqueue(dest, frame)

    def wait_message(self, world: _ProcessWorld, rank: int, source: int,
                     tag: int) -> Message:
        transport = world.transport
        deadline = time.monotonic() + self.timeout
        while True:
            msg = transport.poll(rank, source, tag, remove=True)
            if msg is not None:
                return msg
            transport.drain(block=True)
            if time.monotonic() > deadline:
                from repro.faults import describe_faults

                raise DeadlockError.from_blocked(
                    {rank: (source, tag)},
                    detail=f"no matching message within the "
                           f"{self.timeout}s receive timeout "
                           "(process engine)",
                    faults=describe_faults(world),
                )

    def probe(self, world: _ProcessWorld, rank: int, source: int,
              tag: int) -> Message | None:
        world.transport.drain(block=False)
        return world.transport.poll(rank, source, tag, remove=False)


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself when it pickles cleanly, else a
    :class:`CommunicatorError` carrying its rendering."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return CommunicatorError(
            f"{type(exc).__name__}: {exc}\n"
            + "".join(traceback.format_exception(exc))
        )


def process_rank_main(rank: int, nranks: int, fn, queues, result_queue,
                      timeout: float, fault_plan=None) -> None:
    """Entry point of one spawned rank (must be importable by spawn).

    Builds the rank's private world, runs ``fn(comm)``, and reports
    ``("ok", rank, result, stats)``, ``("error", rank, exc, None)``, or
    — when the rank's scripted :class:`~repro.faults.CrashFault` fires —
    ``("crashed", rank, None, stats)`` on the result queue.

    Each child builds its *own* injector from the shared picklable
    ``fault_plan``.  Fault decisions are drawn from the frame's content
    hash keyed by the plan seed, so per-child injectors agree with a
    single shared one frame-for-frame.
    """
    from repro.errors import RankCrashError
    from repro.simmpi.communicator import Communicator

    try:
        world = _ProcessWorld(nranks, rank, ProcessTransport(queues, rank))
        if fault_plan is not None:
            from repro.faults import FaultInjector, FaultyTransport

            injector = FaultInjector(fault_plan, nranks, stats=world.stats)
            world.transport = FaultyTransport(world.transport, injector)
            world.fault_plan = fault_plan
            world.injector = injector
        comm = Communicator(world, rank, _ProcessEndpoint(timeout))
        result = fn(comm)
        result_queue.put(("ok", rank, result, world.stats[rank]))
    except RankCrashError:
        # Scripted crash: report the partial stats so the parent's
        # ledger stays complete, then die with exit code 0 — the
        # engine's child-exit sweep must not flag a planned death.
        result_queue.put(("crashed", rank, None, world.stats[rank]))
        raise SystemExit(0)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        try:
            result_queue.put(("error", rank, _portable_exception(exc), None))
        finally:
            raise SystemExit(1)
