"""Sub-communicators (``MPI_Comm_split``).

A sub-communicator addresses a subset of the world's ranks with dense
local ranks 0..n-1, so group algorithms (the paper's Section V partial
replication exchanges, for instance) are written naturally instead of
filtering a world-wide collective.

Isolation is by tag translation: each split consumes one world collective
generation, giving every group member the same *split ordinal*, and the
sub-communicator maps its tags into a reserved stride of the parent's tag
space.  Messages inside different sub-communicators (or the parent)
therefore can never cross-match.  The one restriction this scheme imposes
is that ``ANY_TAG`` receives are not available inside a sub-communicator
(the members' traffic shares the parent mailbox, and a wildcard would see
through the translation); every call must name its tag, which group
algorithms naturally do.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import CommunicatorError, RankMismatchError
from repro.simmpi.message import ANY_SOURCE, ANY_TAG, Message, Tags

#: Base of the tag region reserved for sub-communicators.
SUBCOMM_TAG_BASE = 1 << 28
#: Tag stride per split ordinal: user tags plus collective generations.
SUBCOMM_TAG_STRIDE = 1 << 22


class SubCommunicator:
    """A dense-rank view over a subset of a parent communicator."""

    def __init__(self, parent, members: Sequence[int], ordinal: int) -> None:
        members = list(members)
        if parent.rank not in members:
            raise CommunicatorError(
                f"rank {parent.rank} is not a member of the split group"
            )
        if len(set(members)) != len(members):
            raise CommunicatorError("split group has duplicate members")
        self._parent = parent
        self._members = members
        self._rank = members.index(parent.rank)
        self._tag_base = SUBCOMM_TAG_BASE + ordinal * SUBCOMM_TAG_STRIDE
        self._generation = 0

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the group."""
        return self._rank

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def members(self) -> tuple[int, ...]:
        """The parent ranks of the group, in local-rank order."""
        return tuple(self._members)

    @property
    def stats(self):
        """Traffic is accounted on the parent rank's ledger."""
        return self._parent.stats

    # ------------------------------------------------------------------
    def _translate_tag(self, tag: int) -> int:
        if tag == ANY_TAG:
            raise CommunicatorError(
                "ANY_TAG is not supported inside a sub-communicator"
            )
        if not 0 <= tag < Tags.COLLECTIVE_BASE:
            raise CommunicatorError(
                f"sub-communicator tags must be in [0, {Tags.COLLECTIVE_BASE})"
            )
        return self._tag_base + tag

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise CommunicatorError(
                f"peer rank {peer} out of range for group size {self.size}"
            )

    def _localize(self, msg: Message) -> Message:
        """Translate a delivered message back into group coordinates."""
        return Message(
            source=self._members.index(msg.source),
            tag=msg.tag - self._tag_base,
            payload=msg.payload,
        )

    # ------------------------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send to a group rank."""
        self._check_peer(dest)
        self._parent.send(self._members[dest], payload,
                          tag=self._translate_tag(tag))

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Message:
        """Receive from a group rank (tag required; no ANY_TAG)."""
        parent_source = (
            ANY_SOURCE if source == ANY_SOURCE else self._members[source]
        )
        msg = self._parent.recv(parent_source, self._translate_tag(tag))
        return self._localize(msg)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = 0) -> Message | None:
        parent_source = (
            ANY_SOURCE if source == ANY_SOURCE else self._members[source]
        )
        msg = self._parent.iprobe(parent_source, self._translate_tag(tag))
        return None if msg is None else self._localize(msg)

    # ------------------------------------------------------------------
    # collectives over the group (mirroring Communicator's algorithms)
    # ------------------------------------------------------------------
    def _next_tag(self) -> int:
        tag = Tags.COLLECTIVE_BASE + self._generation
        self._generation += 1
        # Collective tags live above the user range inside the stride.
        if tag >= SUBCOMM_TAG_STRIDE:
            raise CommunicatorError("sub-communicator generation overflow")
        return tag

    def _coll_send(self, dest: int, payload: Any, tag: int) -> None:
        self._parent.send(self._members[dest], payload, tag=self._tag_base + tag)

    def _coll_recv(self, source: int, tag: int) -> Message:
        parent_source = (
            ANY_SOURCE if source == ANY_SOURCE else self._members[source]
        )
        msg = self._parent.recv(parent_source, self._tag_base + tag)
        return self._localize(msg)

    def barrier(self) -> None:
        tag = self._next_tag()
        if self._rank == 0:
            for _ in range(self.size - 1):
                self._coll_recv(ANY_SOURCE, tag)
            for dest in range(1, self.size):
                self._coll_send(dest, None, tag)
        else:
            self._coll_send(0, None, tag)
            self._coll_recv(0, tag)

    def alltoallv(self, chunks: Sequence[Any]) -> list[Any]:
        if len(chunks) != self.size:
            raise RankMismatchError(
                f"alltoallv needs exactly {self.size} chunks, got {len(chunks)}"
            )
        from repro.simmpi import wire

        tag = self._next_tag()
        out: list[Any] = [None] * self.size
        for dest in range(self.size):
            if dest == self._rank:
                out[dest] = wire.clone(chunks[dest])
            else:
                self._coll_send(dest, chunks[dest], tag)
        for _ in range(self.size - 1):
            msg = self._coll_recv(ANY_SOURCE, tag)
            out[msg.source] = msg.payload
        return out

    def allgather(self, value: Any) -> list[Any]:
        return self.alltoallv([value] * self.size)

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Any:
        gathered = self.allgather(value)
        acc = gathered[0]
        for v in gathered[1:]:
            acc = op(acc, v)
        return acc


def split(parent, color: int, ordinal_tag: int | None = None) -> SubCommunicator:
    """Partition the parent communicator by ``color`` (collective).

    Every rank calls with its color; ranks sharing a color form one group
    with local ranks in parent-rank order.  Returns this rank's group.
    """
    infos = parent.allgather((int(color), parent.rank))
    # The allgather consumed one parent generation; reuse it as the split
    # ordinal so all members agree without more traffic.
    ordinal = parent._generation if ordinal_tag is None else ordinal_tag
    members = [r for c, r in sorted(infos, key=lambda x: x[1]) if c == color]
    return SubCommunicator(parent, members, ordinal)
