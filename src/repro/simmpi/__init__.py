"""A from-scratch message-passing runtime with MPI semantics.

The paper's algorithm is written against MPI: tagged point-to-point
send/recv, ``MPI_Iprobe``, ``MPI_Alltoallv``, ``MPI_Allgatherv``,
``MPI_Reduce`` and barriers.  mpi4py is not available in this environment,
so this package implements those semantics over Python threads:

* :class:`~repro.simmpi.engine.CooperativeEngine` — ranks take
  deterministic turns, switching only at communication points.  Runs are
  exactly reproducible (used by tests and by the instrumented runs that
  feed the performance model).
* :class:`~repro.simmpi.engine.ThreadedEngine` — ranks run as free
  concurrent threads (used to exercise the paper's
  correction-thread/communication-thread structure under real
  concurrency).

Payloads are numpy arrays or small immutable Python values; sends copy
array payloads (MPI buffer semantics).  Every rank's traffic is counted by
:class:`~repro.simmpi.instrument.CommStats`, which the performance model
consumes.
"""

from repro.simmpi.message import Message, ANY_SOURCE, ANY_TAG, Tags
from repro.simmpi.instrument import CommStats
from repro.simmpi.communicator import Communicator
from repro.simmpi.request import Request, RecvRequest, SendRequest, waitall
from repro.simmpi.engine import (
    CooperativeEngine,
    ThreadedEngine,
    run_spmd,
)

__all__ = [
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "Tags",
    "CommStats",
    "Communicator",
    "Request",
    "RecvRequest",
    "SendRequest",
    "waitall",
    "CooperativeEngine",
    "ThreadedEngine",
    "run_spmd",
]
