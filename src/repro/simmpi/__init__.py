"""A from-scratch message-passing runtime with MPI semantics.

The paper's algorithm is written against MPI: tagged point-to-point
send/recv, ``MPI_Iprobe``, ``MPI_Alltoallv``, ``MPI_Allgatherv``,
``MPI_Reduce`` and barriers.  mpi4py is not available in this environment,
so this package implements those semantics in three layers:

* **codec** (:mod:`repro.simmpi.wire`) — every payload is encoded into a
  typed binary frame at the communicator's send boundary, so delivery is
  a deep copy on every engine and byte accounting is exact;
* **transport** (:mod:`repro.simmpi.transport`) — how encoded frames
  move: shared-memory deques for the in-memory engines, multiprocessing
  queues for the process engine;
* **engines** (:mod:`repro.simmpi.engine`) — how ranks are scheduled:

  - :class:`~repro.simmpi.engine.CooperativeEngine` — ranks take
    deterministic turns, switching only at communication points.  Runs
    are exactly reproducible (used by tests and by the instrumented runs
    that feed the performance model).
  - :class:`~repro.simmpi.engine.ThreadedEngine` — ranks run as free
    concurrent threads (used to exercise the paper's
    correction-thread/communication-thread structure under real
    concurrency).
  - :class:`~repro.simmpi.engine.ProcessEngine` — one spawned
    interpreter per rank, shared-nothing state, frames over pipes: the
    closest analogue of the paper's MPI deployment, and the only engine
    that scales past the GIL.

The communicator/collectives API is identical on every engine.  Each
rank's traffic is counted by :class:`~repro.simmpi.instrument.CommStats`
as exact encoded frame lengths, which the performance model consumes.
"""

from repro.simmpi import wire
from repro.simmpi.message import Message, ANY_SOURCE, ANY_TAG, Tags
from repro.simmpi.instrument import CommStats
from repro.simmpi.communicator import Communicator
from repro.simmpi.request import Request, RecvRequest, SendRequest, waitall
from repro.simmpi.transport import LocalTransport, ProcessTransport, Transport
from repro.simmpi.engine import (
    CooperativeEngine,
    ProcessEngine,
    ThreadedEngine,
    run_spmd,
)

__all__ = [
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "Tags",
    "CommStats",
    "Communicator",
    "Request",
    "RecvRequest",
    "SendRequest",
    "waitall",
    "CooperativeEngine",
    "ProcessEngine",
    "ThreadedEngine",
    "run_spmd",
    "Transport",
    "LocalTransport",
    "ProcessTransport",
    "wire",
]
