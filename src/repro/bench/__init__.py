"""Experiment harness: one entry point per paper table/figure.

Each ``fig*``/``table*`` function in :mod:`repro.bench.figures` regenerates
the corresponding exhibit: the rows/series the paper reports, produced by
running the reproduced implementation at laptop scale and projecting to
BlueGene/Q scale with the calibrated performance model.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets.
"""

from repro.bench.harness import ExperimentResult, format_table, small_scale
from repro.bench.export import export_all, write_csv
from repro.bench import figures

__all__ = [
    "ExperimentResult",
    "format_table",
    "small_scale",
    "figures",
    "export_all",
    "write_csv",
]
