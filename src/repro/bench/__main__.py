"""``python -m repro.bench`` — regenerate every paper exhibit.

Prints each table/figure in sequence; with ``--csv DIR`` also writes one
CSV per exhibit.  Pass exhibit names to restrict (e.g. ``fig6 fig7``).
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    from repro.bench.export import export_all
    from repro.bench.figures import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"subset to run (default all: {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--csv", metavar="DIR",
                        help="also export each exhibit as CSV into DIR")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in chosen if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    for name in chosen:
        t0 = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - t0
        print(result)
        print(f"[{name}: {elapsed:.1f}s]\n")
    if args.csv:
        paths = export_all(args.csv, only=chosen)
        print(f"CSV exhibits written: {', '.join(str(p) for p in paths)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
