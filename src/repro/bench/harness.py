"""Shared machinery for the per-figure experiments.

``small_scale`` builds a laptop-sized instance of one of the Table I
dataset profiles (same coverage / read length / error character, shrunken
genome) together with a matching :class:`~repro.config.ReptileConfig`, so
every figure's measured component runs the *real* distributed
implementation end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.config import ReptileConfig
from repro.core.policy import derive_thresholds
from repro.datasets.profiles import PROFILES, DatasetProfile
from repro.datasets.reads import SimulatedDataset


@dataclass
class ExperimentResult:
    """A reproduced exhibit: titled columns and data rows."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        """Append one data row (width must match the columns)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} != column count {len(self.columns)}"
            )
        self.rows.append(row)

    def note(self, text: str) -> None:
        """Attach a footnote shown under the table."""
        self.notes.append(text)

    def __str__(self) -> str:
        return format_table(self)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an experiment as an aligned text table."""
    cells = [[_fmt(v) for v in row] for row in result.rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(result.columns)
    ]
    lines = [f"== {result.experiment}: {result.title} =="]
    header = "  ".join(c.ljust(w) for c, w in zip(result.columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


@dataclass(frozen=True)
class SmallScale:
    """A shrunken dataset instance plus the matching configuration."""

    profile: DatasetProfile
    dataset: SimulatedDataset
    config: ReptileConfig


def small_scale(
    profile_name: str = "E.Coli",
    genome_size: int = 12_000,
    seed: int = 7,
    localized_errors: bool = False,
    k: int = 12,
    tile_overlap: int = 4,
    chunk_size: int = 250,
) -> SmallScale:
    """A laptop-sized instance of a Table I profile with tuned thresholds."""
    profile = PROFILES[profile_name]
    dataset = profile.scaled(
        genome_size=genome_size, seed=seed, localized_errors=localized_errors
    )
    shape_len = 2 * k - tile_overlap
    kt, tt = derive_thresholds(
        dataset.coverage,
        profile.read_length,
        k,
        shape_len,
        tile_step=k - tile_overlap,
        error_rate=profile.error_model.base_rate,
    )
    config = ReptileConfig(
        kmer_length=k,
        tile_overlap=tile_overlap,
        kmer_threshold=kt,
        tile_threshold=tt,
        chunk_size=chunk_size,
    )
    return SmallScale(profile=profile, dataset=dataset, config=config)
