"""Exporting experiment results for plotting.

``pytest benchmarks/ -s`` prints each exhibit as a text table; this module
turns the same :class:`~repro.bench.harness.ExperimentResult` objects into
CSV files (one per exhibit) so the figures can be replotted with any tool.
``export_all`` regenerates every registered experiment into a directory —
what a release would ship as the "figure data" artifact.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.bench.harness import ExperimentResult
from repro.util.logging import get_logger

logger = get_logger("bench.export")


def write_csv(result: ExperimentResult, path: str | os.PathLike) -> None:
    """Write one experiment's rows as CSV (notes become # comments)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        fh.write(f"# {result.experiment}: {result.title}\n")
        for note in result.notes:
            fh.write(f"# note: {note}\n")
        writer = csv.writer(fh)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow(row)


def _json_default(value: Any):
    # numpy scalars (np.int64 counts, np.float64 timings) leak into rows;
    # .item() converts them without importing numpy here.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"not JSON-serializable: {value!r}")


def write_json(result: ExperimentResult, path: str | os.PathLike) -> None:
    """Write one experiment as JSON — the ``bench_*`` interchange shape.

    The payload mirrors :class:`ExperimentResult` field-for-field under a
    versioned ``schema`` key, so perf-trajectory tooling can diff runs of
    the same experiment across commits.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": "repro.experiment/1",
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=_json_default)
        fh.write("\n")


def slug(name: str) -> str:
    """Filesystem-safe name for an experiment id."""
    return (
        name.lower().replace(".", "").replace(" ", "_").replace("/", "-")
    )


def export_all(
    directory: str | os.PathLike,
    experiments: Mapping[str, Callable[[], ExperimentResult]] | None = None,
    only: Iterable[str] | None = None,
) -> list[Path]:
    """Run every registered experiment and write one CSV each.

    ``only`` restricts to a subset of registry names.  Returns the written
    paths.  Measured experiments run the real implementation, so a full
    export takes a minute or two.
    """
    if experiments is None:
        from repro.bench.figures import ALL_EXPERIMENTS

        experiments = ALL_EXPERIMENTS
    chosen = set(only) if only is not None else set(experiments)
    unknown = chosen - set(experiments)
    if unknown:
        raise KeyError(f"unknown experiments: {sorted(unknown)}")
    out: list[Path] = []
    directory = Path(directory)
    for name, fn in experiments.items():
        if name not in chosen:
            continue
        logger.info("exporting %s", name)
        result = fn()
        path = directory / f"{slug(name)}.csv"
        write_csv(result, path)
        out.append(path)
    return out
