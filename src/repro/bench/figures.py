"""One function per paper exhibit (Table I, Figs. 2-8, Section V memory).

Every function returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows mirror what the paper plots.  Measured components run the real
distributed implementation at laptop scale; projected components use the
calibrated BlueGene/Q model with the full-size Table I workloads.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, SmallScale, small_scale
from repro.datasets.profiles import PROFILES
from repro.parallel import HeuristicConfig, ParallelReptile
from repro.perfmodel import (
    BGQMachine,
    PerformancePredictor,
    ScalingStudy,
    workload_for_profile,
)
from repro.util.stats import relative_spread

MB = 1024.0 ** 2


# ----------------------------------------------------------------------
def table1() -> ExperimentResult:
    """Table I: the three dataset profiles."""
    out = ExperimentResult(
        "Table I",
        "E.Coli, Drosophila and Human datasets used for experimentation",
        ["Genome", "Reads", "Length", "Genome size", "Coverage"],
    )
    for profile in PROFILES.values():
        out.add(
            profile.name,
            profile.n_reads,
            profile.read_length,
            f"{profile.genome_size:.2e}",
            f"{profile.coverage:.0f}X",
        )
    out.note("coverage as reported by the paper; its own formula gives "
             "~197X for E.Coli (length x reads / genome size)")
    return out


# ----------------------------------------------------------------------
def fig2(nranks: int = 128) -> ExperimentResult:
    """Fig. 2: 128 ranks, E.Coli, varying ranks/node (projected)."""
    machine = BGQMachine()
    workload = workload_for_profile(PROFILES["E.Coli"])
    out = ExperimentResult(
        "Fig. 2",
        f"Execution time of {nranks} ranks for E.Coli varying ranks/node",
        ["ranks/node", "nodes", "construction_s", "correction_s",
         "comm_kmer_s", "comm_tile_s", "serve_s", "total_s"],
    )
    for rpn in (8, 16, 32):
        pred = PerformancePredictor(machine, workload, ranks_per_node=rpn)
        pb = pred.predict(nranks)
        out.add(rpn, pb.nodes, pb.construction_total, pb.correction_total,
                pb.comm_kmers, pb.comm_tiles, pb.serve_time, pb.total)
    out.note("paper: 32 ranks/node ~30% slower than 8; slowdown mostly in "
             "communication; construction << correction; tiles dominate")
    return out


# ----------------------------------------------------------------------
def fig3(
    nranks: int = 128,
    scale: SmallScale | None = None,
    measured_ranks: int = 32,
) -> ExperimentResult:
    """Fig. 3: per-rank k-mer/tile counts.

    Two components: (a) the real distributed build at ``measured_ranks``
    (small tables, so the spread is Poisson-limited); (b) the ownership
    hash applied to the full E.Coli spectrum's entry counts at ``nranks``
    ranks, which is the regime the paper's <1%/<2% claim lives in — the
    spread shrinks as 1/sqrt(entries per rank).
    """
    scale = scale or small_scale(genome_size=15_000)
    runner = ParallelReptile(
        scale.config, HeuristicConfig(), nranks=measured_ranks,
        engine="cooperative",
    )
    result = runner.build_only(scale.dataset.block)
    out = ExperimentResult(
        "Fig. 3",
        f"K-mer and tile count of each rank "
        f"(measured at {measured_ranks} ranks; full-scale hash assignment "
        f"at {nranks} ranks)",
        ["series", "ranks", "min", "max", "mean", "spread_pct"],
    )
    for table in ("kmers", "tiles"):
        sizes = result.table_sizes_per_rank(table)
        out.add(f"measured {table}", measured_ranks, int(sizes.min()),
                int(sizes.max()), float(sizes.mean()),
                100 * relative_spread(sizes))

    # Full-scale: assign the E.Coli pre-threshold spectra's worth of
    # random keys to owners and measure the per-rank spread.
    workload = workload_for_profile(PROFILES["E.Coli"])
    rng = np.random.default_rng(42)
    from repro.hashing.inthash import mix_to_rank

    for label, entries in (
        ("full-scale kmers", int(workload.kmer_entries_pre)),
        ("full-scale tiles", int(workload.tile_entries_pre)),
    ):
        counts = np.zeros(nranks, dtype=np.int64)
        remaining = entries
        while remaining > 0:
            chunk = min(remaining, 4_000_000)
            keys = rng.integers(0, 2**63, chunk, dtype=np.uint64)
            counts += np.bincount(mix_to_rank(keys, nranks), minlength=nranks)
            remaining -= chunk
        out.add(label, nranks, int(counts.min()), int(counts.max()),
                float(counts.mean()), 100 * relative_spread(counts))
    out.note("paper: k-mer spread < 1%, tile spread < 2% at 128 ranks; "
             "spread scales as 1/sqrt(entries per rank)")
    return out


# ----------------------------------------------------------------------
def fig4(nranks: int = 16, scale: SmallScale | None = None) -> ExperimentResult:
    """Fig. 4: load balance (measured imbalance + projected times)."""
    scale = scale or small_scale(genome_size=20_000, localized_errors=True)
    out = ExperimentResult(
        "Fig. 4",
        "Errors corrected and remote tile lookups per rank, with and "
        "without static load balancing (measured); times projected to "
        "128 BG/Q ranks",
        ["mode", "errors_min", "errors_max", "lookups_min", "lookups_max",
         "proj_fastest_s", "proj_slowest_s"],
    )
    machine = BGQMachine()
    workload = workload_for_profile(PROFILES["E.Coli"])
    pred = PerformancePredictor(machine, workload, ranks_per_node=32)
    for balanced in (False, True):
        runner = ParallelReptile(
            scale.config,
            HeuristicConfig(load_balance=balanced),
            nranks=nranks,
            engine="cooperative",
        )
        result = runner.run(scale.dataset.block)
        errors = result.corrections_per_rank()
        lookups = result.counter_per_rank("remote_tile_lookups")
        from repro.perfmodel.distribution import rank_time_distribution

        times = rank_time_distribution(pred, 128, load_balanced=balanced)
        out.add(
            "balanced" if balanced else "imbalanced",
            int(errors.min()), int(errors.max()),
            int(lookups.min()), int(lookups.max()),
            float(times.min()), float(times.max()),
        )
    out.note("paper (128 ranks): imbalanced 4948-16000+ s, errors "
             "33886-47927; balanced ~8886 s, errors 39127-39997 (2%)")
    out.note("measured lookup spread is damped at laptop scale: the base "
             "tiling lookups (error-independent) dominate with d=1 "
             "candidates, unlike the paper's candidate-dominated traffic")
    return out


# ----------------------------------------------------------------------
_FIG5_MODES: list[tuple[str, HeuristicConfig, int, int]] = [
    # (label, heuristics, nranks, ranks_per_node) as the paper ran them.
    ("base", HeuristicConfig(), 1024, 32),
    ("universal", HeuristicConfig(universal=True), 1024, 32),
    ("read kmers/tiles", HeuristicConfig(read_kmers=True, read_tiles=True), 1024, 32),
    ("add remote lookups",
     HeuristicConfig(read_kmers=True, read_tiles=True, add_remote_lookups=True),
     1024, 32),
    ("batch reads table", HeuristicConfig(batch_reads=True), 1024, 32),
    ("allgather kmers", HeuristicConfig(allgather_kmers=True), 256, 8),
    ("allgather tiles", HeuristicConfig(allgather_tiles=True), 256, 8),
    ("allgather both", HeuristicConfig(allgather_kmers=True, allgather_tiles=True),
     32, 1),
]


def fig5(measure: bool = True, scale: SmallScale | None = None) -> ExperimentResult:
    """Fig. 5: time and memory per heuristic (projected; lookups measured)."""
    machine = BGQMachine()
    workload = workload_for_profile(PROFILES["E.Coli"])
    out = ExperimentResult(
        "Fig. 5",
        "Time of execution and memory footprint with different heuristics "
        "(E.Coli; rank geometry as the paper ran each mode)",
        ["mode", "ranks", "rpn", "correction_s", "memory_MB",
         "meas_remote_kmers", "meas_remote_tiles"],
    )
    scale = scale or small_scale(genome_size=10_000)
    for label, heur, nranks, rpn in _FIG5_MODES:
        pred = PerformancePredictor(machine, workload, heur, ranks_per_node=rpn)
        pb = pred.predict(nranks)
        if measure:
            small = ParallelReptile(
                scale.config, heur, nranks=8, engine="cooperative"
            ).run(scale.dataset.block)
            mk = int(small.counter_per_rank("remote_kmer_lookups").sum())
            mt = int(small.counter_per_rank("remote_tile_lookups").sum())
        else:
            mk = mt = -1
        out.add(label, nranks, rpn, pb.correction_total,
                pb.memory_peak / MB, mk, mt)
    out.note("paper: universal -8.8%; kmer replication slower (928 MB); "
             "tile replication 975 s (948 MB); batch lowers memory; "
             "full replication 58 s (1648 MB)")
    return out


# ----------------------------------------------------------------------
def _scaling_figure(
    experiment: str,
    dataset: str,
    rank_counts: list[int],
    heuristics: HeuristicConfig,
    chunk_size: int = 2000,
) -> ExperimentResult:
    machine = BGQMachine()
    workload = workload_for_profile(PROFILES[dataset])
    pred = PerformancePredictor(
        machine, workload, heuristics, ranks_per_node=32, chunk_size=chunk_size
    )
    study = ScalingStudy(pred)
    points = study.sweep(rank_counts)
    effs = study.efficiency(points)
    out = ExperimentResult(
        experiment,
        f"Scaling for the {dataset} dataset "
        f"({rank_counts[0]}-{rank_counts[-1]} ranks, 32 ranks/node)",
        ["ranks", "nodes", "construction_s", "correction_s", "total_s",
         "imbalanced_s", "efficiency"],
    )
    for pt, eff in zip(points, effs):
        imb = "DNF" if pt.imbalanced_dnf else f"{pt.total_imbalanced:.0f}"
        out.add(pt.nranks, pt.nodes, pt.balanced.construction_total,
                pt.balanced.correction_total, pt.total_balanced, imb, eff)
    return out


def fig6(rank_counts: list[int] | None = None) -> ExperimentResult:
    """Fig. 6: E.Coli scaling, 1024-8192 ranks (32-256 nodes)."""
    out = _scaling_figure(
        "Fig. 6", "E.Coli", rank_counts or [1024, 2048, 4096, 8192],
        HeuristicConfig(),
    )
    out.note("paper: <200 s at 256 nodes, efficiency 0.81 at 8192 ranks, "
             "imbalanced >2x worse at 32 nodes")
    return out


def fig7(rank_counts: list[int] | None = None) -> ExperimentResult:
    """Fig. 7: Drosophila scaling, 1024-8192 ranks (batch reads mode)."""
    out = _scaling_figure(
        "Fig. 7", "Drosophila", rank_counts or [1024, 2048, 4096, 8192],
        HeuristicConfig(batch_reads=True),
    )
    out.note("paper: ~600 s at 8192 ranks, efficiency 0.64, 981 s "
             "construction at 1024 ranks, imbalanced DNF at 1024/2048")
    return out


def fig8(rank_counts: list[int] | None = None) -> ExperimentResult:
    """Fig. 8: Human scaling, 4096-32768 ranks (batch reads, 10k chunks)."""
    out = _scaling_figure(
        "Fig. 8", "Human", rank_counts or [4096, 8192, 16384, 32768],
        HeuristicConfig(batch_reads=True), chunk_size=10_000,
    )
    out.note("paper: the 1.55-billion-read human dataset corrected in "
             "~2.2 h on 1024 nodes (one BG/Q rack)")
    return out


# ----------------------------------------------------------------------
def memory_footprints() -> ExperimentResult:
    """Section V: per-rank footprints at each dataset's largest scale."""
    machine = BGQMachine()
    out = ExperimentResult(
        "Sec. V",
        "Per-rank memory footprint at the largest node counts",
        ["dataset", "ranks", "nodes", "memory_MB", "budget_MB", "fits_512MB"],
    )
    cases = [
        ("E.Coli", 8192, HeuristicConfig(), 2000),
        ("Drosophila", 16384, HeuristicConfig(batch_reads=True), 2000),
        ("Human", 32768, HeuristicConfig(batch_reads=True), 10_000),
    ]
    for dataset, nranks, heur, chunk in cases:
        workload = workload_for_profile(PROFILES[dataset])
        pred = PerformancePredictor(
            machine, workload, heur, ranks_per_node=32, chunk_size=chunk
        )
        pb = pred.predict(nranks)
        budget = machine.memory_per_rank_budget(32) / MB
        out.add(dataset, nranks, pb.nodes, pb.memory_peak / MB, budget,
                "yes" if pb.memory_peak / MB < 512 else "NO")
    out.note("paper: E.Coli <50 MB @256 nodes, Drosophila ~80 MB @512, "
             "Human ~120 MB @1024; all under the 512 MB/process budget")
    return out


def anchors() -> ExperimentResult:
    """The EXPERIMENTS.md anchor table, regenerated from the model."""
    from repro.perfmodel.calibrate import PAPER_ANCHORS, anchor_model_value

    out = ExperimentResult(
        "Anchors",
        "Performance model vs every paper-reported value",
        ["exhibit", "quantity", "dataset", "ranks", "paper", "model",
         "deviation", "within_tol"],
    )
    for anchor in PAPER_ANCHORS:
        value = anchor_model_value(anchor)
        rel = (value - anchor.paper_value) / anchor.paper_value
        out.add(
            anchor.figure, anchor.description[:40], anchor.dataset,
            anchor.nranks, anchor.paper_value, value,
            f"{rel:+.0%}", "yes" if abs(rel) <= anchor.tolerance else "NO",
        )
    out.note("tolerances per anchor in src/repro/perfmodel/calibrate.py")
    return out


def sensitivity() -> ExperimentResult:
    """Model robustness: each fitted constant perturbed +/-20%."""
    from repro.perfmodel.sensitivity import sensitivity_analysis

    out = ExperimentResult(
        "Sensitivity",
        "Anchor compliance under +/-20% perturbation of each fitted constant",
        ["constant", "factor", "anchors_broken", "worst_ratio", "worst_anchor"],
    )
    for row in sensitivity_analysis():
        out.add(row.field, row.factor, row.anchors_broken,
                row.worst_ratio, row.worst_anchor[:48])
    out.note("ratio = deviation/tolerance of the tightest anchor; >1 breaks")
    out.note("constants that break anchors when perturbed are genuinely "
             "pinned by the paper's measurements")
    return out


#: Registry used by the benchmark suite and the examples.
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "memory": memory_footprints,
    "anchors": anchors,
    "sensitivity": sensitivity,
}
