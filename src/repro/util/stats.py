"""Summary statistics used throughout the result reporting.

The paper repeatedly reports *spreads* across ranks — e.g. "the variation
between the ranks having the highest and the lowest number of k-mers is less
than 1%" (Fig. 3) — so :func:`relative_spread` implements exactly that
(max-min)/min ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a per-rank quantity."""

    count: int
    minimum: float
    maximum: float
    mean: float
    std: float

    @property
    def spread(self) -> float:
        """(max - min) / min; 0 for constant data, inf if min == 0 < max."""
        if self.minimum == 0:
            return 0.0 if self.maximum == 0 else float("inf")
        return (self.maximum - self.minimum) / self.minimum


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    """Summarize a non-empty sequence of per-rank values."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return Summary(
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
    )


def relative_spread(values: Sequence[float] | np.ndarray) -> float:
    """The paper's rank-imbalance metric: (max - min) / min."""
    return summarize(values).spread


def parallel_efficiency(
    base_time: float, base_procs: int, time: float, procs: int
) -> float:
    """Classic strong-scaling efficiency: speedup / (procs ratio).

    The paper quotes 0.81 (E.Coli) and 0.64 (Drosophila) at 8192 ranks
    relative to the 1024-rank runs.
    """
    if base_time <= 0 or time <= 0 or base_procs <= 0 or procs <= 0:
        raise ValueError("times and processor counts must be positive")
    speedup = base_time / time
    return speedup / (procs / base_procs)
