"""Phase timing for the parallel driver and the benchmark harness.

The paper reports per-phase wall-clock times (k-mer construction time vs
error-correction time, and within correction the communication time).  The
:class:`PhaseTimer` accumulates named phases so drivers can report the same
breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Timing:
    """A single accumulated phase measurement."""

    name: str
    seconds: float
    calls: int

    @property
    def per_call(self) -> float:
        """Mean seconds per enter/exit of the phase."""
        return self.seconds / self.calls if self.calls else 0.0


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Phases may nest; nested time is attributed to every open phase, matching
    how the paper attributes communication time both to "communication" and
    to the enclosing "error correction" phase.

    Example
    -------
    >>> t = PhaseTimer()
    >>> with t.phase("kmer_construction"):
    ...     pass
    >>> t.seconds("kmer_construction") >= 0.0
    True
    """

    _seconds: dict[str, float] = field(default_factory=dict)
    _calls: dict[str, int] = field(default_factory=dict)
    clock: "object" = time.perf_counter

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager accumulating elapsed time into ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            self.add(name, elapsed)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name`` directly (for modelled time)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of times phase ``name`` was entered."""
        return self._calls.get(name, 0)

    def timings(self) -> list[Timing]:
        """All phases as immutable records, in insertion order."""
        return [
            Timing(name=n, seconds=s, calls=self._calls[n])
            for n, s in self._seconds.items()
        ]

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's phases into this one (for per-rank merge)."""
        for name, secs in other._seconds.items():
            self._seconds[name] = self._seconds.get(name, 0.0) + secs
            self._calls[name] = self._calls.get(name, 0) + other._calls[name]

    def as_dict(self) -> dict[str, float]:
        """Phase name to total seconds, a copy safe to mutate."""
        return dict(self._seconds)
