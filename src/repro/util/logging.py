"""Logger factory with a library-safe default configuration.

The library never configures the root logger.  ``get_logger`` returns a child
of the ``repro`` logger with a ``NullHandler`` attached at the package root so
importing the library stays silent unless the application opts in.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` may be a bare suffix (``"parallel.driver"``) or a fully
    qualified module name (``"repro.parallel.driver"``); both map to the
    same logger.
    """
    if name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the package logger (for examples/CLIs)."""
    logger = logging.getLogger(_ROOT_NAME)
    if any(isinstance(h, logging.StreamHandler) and not isinstance(h, logging.NullHandler)
           for h in logger.handlers):
        logger.setLevel(level)
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
