"""Small shared utilities: phase timers, logging, summary statistics."""

from repro.util.timer import PhaseTimer, Timing
from repro.util.stats import Summary, summarize, relative_spread
from repro.util.logging import get_logger

__all__ = [
    "PhaseTimer",
    "Timing",
    "Summary",
    "summarize",
    "relative_spread",
    "get_logger",
]
