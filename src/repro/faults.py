"""Deterministic, seeded fault injection for the simmpi runtime.

The paper's distributed Step IV assumes every remote k-mer/tile lookup
is eventually answered; at BG/Q scale that assumption is the first thing
a real deployment loses.  This module makes the loss reproducible: a
picklable :class:`FaultPlan` scripts frame-level faults (drop, corrupt,
duplicate, delay) plus rank-level faults (scripted crashes and stalls),
and a :class:`FaultInjector` applies them at the transport boundary so
the *same* chaos replays on the cooperative, threaded, and process
engines.

Determinism without a shared sequence counter
---------------------------------------------
A per-edge message counter would be nondeterministic under threads (the
interleaving decides which message is "third").  Instead every decision
is a pure function of the frame's *content*: a keyed blake2b over the
encoded frame bytes, the destination, and how many times this exact
frame has been offered to that destination before (so a retransmitted
frame — byte-identical by construction — draws a fresh decision).  Since
frames embed their source and tag, two logical messages never collide,
and the per-child injectors of the process engine see exactly the same
(frame, dest, occurrence) triples a single shared injector would.

Fault scoping
-------------
Frame faults apply only to the *lookup plane* (:data:`DROPPABLE_TAGS`):
count/prefetch/resilient requests and responses plus the fault-mode
exchange queries.  Control traffic (DONE/SHUTDOWN, replica transfers,
exchange handshake) and collectives ride a reliable substrate — the
same layering as TeaMPI, which interposes resilience under an unchanged
MPI-style API.  Crash and stall faults are *phase-gated*: they count
only correction-phase communication events, announced by the engines'
``enter_phase`` hook, because the recovery protocol replicates state at
the phase boundary (crashing earlier would be unsurvivable by design,
and :meth:`FaultPlan.validate` documents that contract).

Recovery model (ReStore-style)
------------------------------
The plan travels with the SPMD program, so every rank knows which ranks
are doomed before correction starts.  Each doomed rank replicates its
spectrum shard and read partition to a partner (``(rank+1) % size``) —
in memory, or spilled via :mod:`repro.core.persist` — and clients route
requests for a doomed owner's keys straight to the partner (the scripted
plan stands in for a failure detector).  After correcting its own reads
the partner replays the ward's reads from the replica; the crashed
rank's partial results are discarded, so the merged output is
bit-identical to the fault-free run regardless of where the crash fired.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, replace

from repro.errors import ConfigError, RankCrashError
from repro.simmpi import wire
from repro.simmpi.message import Tags
from repro.simmpi.transport import Transport

#: Tags the injector may drop/corrupt/duplicate/delay — the Step IV/III
#: lookup plane.  Everything else (DONE, SHUTDOWN, REPLICA, the exchange
#: handshake, collectives) is delivered reliably.
DROPPABLE_TAGS = frozenset({
    Tags.KMER_REQUEST,
    Tags.TILE_REQUEST,
    Tags.COUNT_RESPONSE,
    Tags.UNIVERSAL_REQUEST,
    Tags.PREFETCH_REQUEST,
    Tags.PREFETCH_RESPONSE,
    Tags.RESILIENT_REQUEST,
    Tags.RESILIENT_RESPONSE,
    Tags.EXCHANGE_QUERY,
    Tags.EXCHANGE_ANSWER,
})

_TWO64 = float(1 << 64)


@dataclass(frozen=True)
class CrashFault:
    """Scripted death of one rank after its N-th correction-phase send."""

    rank: int
    after_events: int = 3


@dataclass(frozen=True)
class StallFault:
    """Scripted pause of one rank (``seconds``) at its N-th
    correction-phase send — a slow rank, not a dead one."""

    rank: int
    after_events: int = 3
    seconds: float = 0.5


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, JSON-round-trippable chaos script.

    Frame-fault rates are cumulative-threshold probabilities per
    droppable frame; ``max_drops_per_frame`` caps how many times one
    logical frame (by content) may be lost, which is what makes a plan
    *survivable*: a retransmitting client needs at most
    ``2 * max_drops_per_frame`` failed rounds per lookup (request plus
    response may each be lost up to the cap), so any
    ``max_retries >= 2 * max_drops_per_frame`` budget suffices.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: How many transport events (enqueues + polls) a delayed frame is
    #: held back before being flushed.
    delay_events: int = 3
    #: Cap on losses (drops + corruptions) per distinct frame content;
    #: None means uncapped (such plans may not be survivable).
    max_drops_per_frame: int | None = 2
    crashes: tuple[CrashFault, ...] = ()
    stalls: tuple[StallFault, ...] = ()
    #: "partner" replicates doomed state in memory to ``(rank+1)%size``;
    #: "spill" writes it via :mod:`repro.core.persist` and ships the path.
    recovery: str = "partner"
    spill_dir: str | None = None
    #: Retry schedule of the resilient lookup clients.
    base_timeout_s: float = 0.25
    backoff: float = 2.0
    max_retries: int = 6

    # ------------------------------------------------------------------
    def timeout_for(self, attempt: int) -> float:
        """Deadline length of retry round ``attempt`` (0-based):
        ``base_timeout_s * backoff ** attempt``."""
        return self.base_timeout_s * self.backoff**attempt

    def total_budget(self) -> float:
        """Worst-case seconds a lookup may wait before
        :class:`~repro.errors.LookupTimeoutError`: the sum of all
        ``max_retries + 1`` deadline rounds."""
        return sum(self.timeout_for(a) for a in range(self.max_retries + 1))

    # ------------------------------------------------------------------
    @property
    def has_frame_faults(self) -> bool:
        return (
            self.drop_rate > 0 or self.corrupt_rate > 0
            or self.duplicate_rate > 0 or self.delay_rate > 0
        )

    @property
    def needs_resilient_lookups(self) -> bool:
        """Whether Step IV must run its retry/failover protocol (any
        frame fault or crash; stalls alone only slow the happy path)."""
        return self.has_frame_faults or bool(self.crashes)

    @property
    def stall_only(self) -> bool:
        """True when the plan only slows ranks down — the one fault kind
        compatible with the runtime verifier's mailbox audit."""
        return not self.has_frame_faults and not self.crashes

    def doomed_ranks(self) -> frozenset[int]:
        """Ranks scripted to die (each needs a live recovery partner)."""
        return frozenset(c.rank for c in self.crashes)

    @staticmethod
    def partner_of(rank: int, size: int) -> int:
        """The recovery partner of a doomed rank."""
        return (rank + 1) % size

    # ------------------------------------------------------------------
    def validate(self, nranks: int) -> None:
        """Reject plans the runtime cannot honor on ``nranks`` ranks."""
        rates = {
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0:
            raise ConfigError(
                "fault rates are cumulative thresholds and must sum to <= 1"
            )
        if self.delay_events < 1:
            raise ConfigError("delay_events must be >= 1")
        if self.max_drops_per_frame is not None and self.max_drops_per_frame < 0:
            raise ConfigError("max_drops_per_frame must be >= 0 or None")
        if self.base_timeout_s <= 0:
            raise ConfigError("base_timeout_s must be positive")
        if self.backoff < 1.0:
            raise ConfigError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.recovery not in ("partner", "spill"):
            raise ConfigError(
                f"recovery must be 'partner' or 'spill', got {self.recovery!r}"
            )
        if self.recovery == "spill" and self.crashes and not self.spill_dir:
            raise ConfigError("spill recovery requires spill_dir")
        doomed = [c.rank for c in self.crashes]
        if len(set(doomed)) != len(doomed):
            raise ConfigError("at most one CrashFault per rank")
        for c in self.crashes:
            if not 0 <= c.rank < nranks:
                raise ConfigError(f"crash rank {c.rank} out of range")
            if c.rank == 0:
                raise ConfigError(
                    "rank 0 coordinates the DONE/SHUTDOWN handshake and "
                    "cannot be doomed"
                )
            if c.after_events < 1:
                raise ConfigError("crash after_events must be >= 1")
            partner = self.partner_of(c.rank, nranks)
            if partner in set(doomed):
                raise ConfigError(
                    f"recovery partner {partner} of doomed rank {c.rank} "
                    "is itself doomed"
                )
        for s in self.stalls:
            if not 0 <= s.rank < nranks:
                raise ConfigError(f"stall rank {s.rank} out of range")
            if s.after_events < 1:
                raise ConfigError("stall after_events must be >= 1")
            if s.seconds < 0:
                raise ConfigError("stall seconds must be >= 0")

    # ------------------------------------------------------------------
    # JSON round trip (the CLI's --faults plan.json)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The plan as plain JSON-serializable types (see from_dict)."""
        out = {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "delay_events": self.delay_events,
            "max_drops_per_frame": self.max_drops_per_frame,
            "crashes": [vars(c).copy() for c in self.crashes],
            "stalls": [vars(s).copy() for s in self.stalls],
            "recovery": self.recovery,
            "spill_dir": self.spill_dir,
            "base_timeout_s": self.base_timeout_s,
            "backoff": self.backoff,
            "max_retries": self.max_retries,
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (unknown fields
        are a ConfigError, not silently dropped)."""
        data = dict(data)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        crashes = tuple(CrashFault(**c) for c in data.pop("crashes", []))
        stalls = tuple(StallFault(**s) for s in data.pop("stalls", []))
        return cls(crashes=crashes, stalls=stalls, **data)

    def to_json(self) -> str:
        """The plan as pretty-printed JSON (the ``--faults`` file)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "FaultPlan":
        """Load a JSON plan file (``repro correct --faults plan.json``)."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same chaos script under a different seed."""
        return replace(self, seed=seed)


class CrashedRank:
    """Picklable result sentinel for a rank killed by its CrashFault."""

    __slots__ = ("rank",)

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashedRank({self.rank})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CrashedRank) and other.rank == self.rank

    def __hash__(self) -> int:
        return hash(("CrashedRank", self.rank))


# ----------------------------------------------------------------------
class FaultInjector:
    """Applies one :class:`FaultPlan` to a world's transport and ranks.

    One instance per world on the in-memory engines; one per spawned
    child on the process engine (equivalent by the content-hash argument
    in the module docstring).  ``stats`` is the world's per-rank
    :class:`~repro.simmpi.instrument.CommStats` list — fault counters
    are charged to the *sending* rank, read from the frame header.
    """

    def __init__(self, plan: FaultPlan, nranks: int, stats=None) -> None:
        self.plan = plan
        self.nranks = nranks
        self._stats = stats
        self._key = hashlib.blake2b(
            str(plan.seed).encode(), digest_size=16
        ).digest()
        self._lock = threading.Lock()
        #: (dest, frame digest) -> times this exact frame was offered.
        self._occurrence: dict[tuple[int, bytes], int] = {}
        #: frame digest -> losses (drops + corruptions) applied so far.
        self._losses: dict[bytes, int] = {}
        #: Transport activity counter driving delayed-frame release.
        self._events = 0
        self._delayed: list[tuple[int, int, bytes]] = []
        self._phase: dict[int, str] = {}
        self._comm_events: dict[int, int] = {}
        self._crashes = {c.rank: c for c in plan.crashes}
        self._stalls: dict[int, list[StallFault]] = {}
        for s in plan.stalls:
            self._stalls.setdefault(s.rank, []).append(s)
        self._fired_crashes: set[int] = set()
        self._fired_stalls: set[tuple[int, int]] = set()
        self._active_stalls: dict[int, float] = {}
        #: Internal fault tally (mirrors the per-rank stats bumps) so
        #: :meth:`describe_pending` works even without a stats list.
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # frame faults
    # ------------------------------------------------------------------
    def decide(self, dest: int, frame: bytes) -> str:
        """The fate of one offered frame: ``pass``, ``drop``,
        ``corrupt``, ``duplicate``, or ``delay`` (deterministic in the
        plan seed and the frame's content/occurrence)."""
        plan = self.plan
        if not plan.has_frame_faults:
            return "pass"
        _source, tag = wire.frame_header(frame)
        if tag not in DROPPABLE_TAGS:
            return "pass"
        digest = hashlib.blake2b(frame, digest_size=8).digest()
        with self._lock:
            occ = self._occurrence.get((dest, digest), 0)
            self._occurrence[(dest, digest)] = occ + 1
        draw = hashlib.blake2b(
            digest
            + dest.to_bytes(4, "little", signed=True)
            + occ.to_bytes(8, "little"),
            key=self._key,
            digest_size=8,
        ).digest()
        u = int.from_bytes(draw, "little") / _TWO64
        edge = plan.drop_rate
        verdict = "pass"
        if u < edge:
            verdict = "drop"
        elif u < (edge := edge + plan.corrupt_rate):
            verdict = "corrupt"
        elif u < (edge := edge + plan.duplicate_rate):
            verdict = "duplicate"
        elif u < edge + plan.delay_rate:
            verdict = "delay"
        if verdict in ("drop", "corrupt"):
            cap = plan.max_drops_per_frame
            with self._lock:
                lost = self._losses.get(digest, 0)
                if cap is not None and lost >= cap:
                    return "pass"
                self._losses[digest] = lost + 1
        return verdict

    def corrupt(self, frame: bytes) -> bytes:
        """A detectably-corrupted copy of the frame (magic byte flipped,
        so any decode attempt raises WireFormatError)."""
        return bytes([frame[0] ^ 0xFF]) + frame[1:]

    def defer(self, dest: int, frame: bytes) -> None:
        """Hold a delayed frame until ``delay_events`` more transport
        events pass (released by :meth:`take_due`)."""
        with self._lock:
            self._delayed.append(
                (self._events + self.plan.delay_events, dest, frame)
            )

    def take_due(self) -> list[tuple[int, bytes]]:
        """Advance the transport event clock and release due frames."""
        with self._lock:
            self._events += 1
            if not self._delayed:
                return []
            now = self._events
            due = [(d, f) for at, d, f in self._delayed if at <= now]
            self._delayed = [e for e in self._delayed if e[0] > now]
            return due

    def record(self, source: int, name: str) -> None:
        """Charge one fault counter to the sending rank."""
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + 1
        if self._stats is not None and 0 <= source < len(self._stats):
            self._stats[source].bump(name)

    # ------------------------------------------------------------------
    # rank faults (crash / stall), phase-gated
    # ------------------------------------------------------------------
    def enter_phase(self, rank: int, phase: str) -> None:
        """Engines/protocols announce phase entry; crash/stall triggers
        count communication events only inside "correction"."""
        with self._lock:
            self._phase[rank] = phase
            self._comm_events[rank] = 0

    def at_event(self, rank: int) -> None:
        """One correction-phase communication event on ``rank``: fire
        any scripted stall (sleep) or crash (:class:`RankCrashError`)."""
        if rank not in self._crashes and rank not in self._stalls:
            return
        with self._lock:
            if self._phase.get(rank) != "correction":
                return
            n = self._comm_events.get(rank, 0) + 1
            self._comm_events[rank] = n
        stall_s = None
        for s in self._stalls.get(rank, ()):
            key = (rank, s.after_events)
            if s.after_events == n and key not in self._fired_stalls:
                self._fired_stalls.add(key)
                stall_s = s.seconds
        if stall_s is not None:
            self.record(rank, "stalls_injected")
            self._active_stalls[rank] = stall_s
            try:
                time.sleep(stall_s)
            finally:
                self._active_stalls.pop(rank, None)
        crash = self._crashes.get(rank)
        if crash is not None and crash.after_events == n:
            self._fired_crashes.add(rank)
            self.record(rank, "crashes_injected")
            raise RankCrashError(rank, n)

    def crash_fired(self, rank: int) -> bool:
        return rank in self._fired_crashes

    # ------------------------------------------------------------------
    def describe_pending(self) -> str:
        """One-line state summary for deadlock diagnostics: what the
        plan has already done and what is still scripted to happen."""
        parts: list[str] = []
        with self._lock:
            counts = dict(self.counts)
            delayed = len(self._delayed)
            events = dict(self._comm_events)
        fault_bits = [f"{k}={v}" for k, v in sorted(counts.items()) if v]
        if fault_bits:
            parts.append(", ".join(fault_bits))
        if delayed:
            parts.append(f"{delayed} frame(s) held in the delay buffer")
        for rank, seconds in sorted(self._active_stalls.items()):
            parts.append(f"rank {rank} stall of {seconds}s in progress")
        for c in sorted(self._crashes.values(), key=lambda c: c.rank):
            if c.rank in self._fired_crashes:
                parts.append(f"rank {c.rank} crash fired")
            else:
                parts.append(
                    f"rank {c.rank} crash pending (after event "
                    f"{c.after_events}, at {events.get(c.rank, 0)})"
                )
        for rank, stalls in sorted(self._stalls.items()):
            pending = [
                s for s in stalls
                if (rank, s.after_events) not in self._fired_stalls
            ]
            if pending:
                parts.append(
                    f"rank {rank} has {len(pending)} stall(s) pending"
                )
        return "; ".join(parts) if parts else "no faults fired yet"


# ----------------------------------------------------------------------
class FaultyTransport(Transport):
    """A :class:`Transport` decorator applying an injector's frame
    faults at the enqueue boundary.

    Only wraps when a plan is active — fault-free runs never construct
    one, so the hot path stays untouched.  ``enqueue`` returns None for
    undelivered frames (dropped/corrupted/delayed); the engines tolerate
    that.  ``on_deliver`` is an engine hook invoked for frames released
    from the delay buffer, so a receiver blocked on exactly that frame
    is woken (re-armed/notified) the way a direct deposit would.
    """

    def __init__(self, inner: Transport, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.on_deliver = None

    def __getattr__(self, name):
        # boxes / queues / inbox / lock / drain / rank of the inner
        # transport stay reachable for engines and white-box tests.
        return getattr(self.inner, name)

    def enqueue(self, dest: int, frame: bytes):
        inj = self.injector
        source, _tag = wire.frame_header(frame)
        verdict = inj.decide(dest, frame)
        out = None
        if verdict == "pass":
            out = self.inner.enqueue(dest, frame)
        elif verdict == "drop":
            inj.record(source, "frames_dropped")
        elif verdict == "corrupt":
            # The corruption is detectable by construction: the receiver
            # side would fail frame validation, so the frame is charged
            # and discarded here rather than poisoning the inner
            # transport's decode path.
            mangled = inj.corrupt(frame)
            try:
                wire.decode_frame(mangled)
            except Exception:
                pass
            inj.record(source, "frames_corrupted")
        elif verdict == "duplicate":
            out = self.inner.enqueue(dest, frame)
            self.inner.enqueue(dest, frame)
            inj.record(source, "frames_duplicated")
        elif verdict == "delay":
            inj.defer(dest, frame)
            inj.record(source, "frames_delayed")
        self._flush()
        return out

    def poll(self, rank: int, source: int, tag: int, remove: bool):
        self._flush()
        return self.inner.poll(rank, source, tag, remove)

    def _flush(self) -> None:
        for dest, frame in self.injector.take_due():
            msg = self.inner.enqueue(dest, frame)
            if self.on_deliver is not None:
                self.on_deliver(dest, msg)


def describe_faults(world: object) -> str | None:
    """The injector's pending-state rendering for a world, or None when
    no injection is active (feeds DeadlockError diagnostics)."""
    injector = getattr(world, "injector", None)
    if injector is None:
        return None
    rendered: str | None = injector.describe_pending()
    return rendered
